#include "core/flexmoe.h"

#include <algorithm>

#include "core/balance.h"

namespace flexmoe {

Status FlexMoEOptions::Validate() const {
  FLEXMOE_RETURN_IF_ERROR(model.Validate());
  if (num_gpus <= 0) return Status::InvalidArgument("num_gpus <= 0");
  FLEXMOE_RETURN_IF_ERROR(scheduler.Validate());
  FLEXMOE_RETURN_IF_ERROR(policy.Validate());
  FLEXMOE_RETURN_IF_ERROR(executor.Validate());
  FLEXMOE_RETURN_IF_ERROR(group_cache.Validate());
  if (max_pending_ops <= 0) {
    return Status::InvalidArgument("max_pending_ops must be > 0");
  }
  FLEXMOE_RETURN_IF_ERROR(elastic.Validate());
  FLEXMOE_RETURN_IF_ERROR(pipeline.Validate());
  return Status::OK();
}

Result<std::unique_ptr<FlexMoESystem>> FlexMoESystem::Create(
    const FlexMoEOptions& options, const Topology* topo,
    const HardwareProfile* profile) {
  FLEXMOE_CHECK(topo != nullptr && profile != nullptr);
  FLEXMOE_RETURN_IF_ERROR(options.Validate());
  if (topo->num_gpus() != options.num_gpus) {
    return Status::InvalidArgument("topology GPU count mismatch");
  }

  PlacementOptions popt;
  popt.num_experts = options.model.num_experts;
  popt.num_gpus = options.num_gpus;
  popt.slots_per_gpu = options.slots_per_gpu;
  std::vector<Placement> initial;
  initial.reserve(static_cast<size_t>(options.model.num_moe_layers));
  for (int l = 0; l < options.model.num_moe_layers; ++l) {
    FLEXMOE_ASSIGN_OR_RETURN(Placement p, Placement::ExpertParallel(popt));
    initial.push_back(std::move(p));
  }
  FLEXMOE_ASSIGN_OR_RETURN(NcclGroupCache cache,
                           NcclGroupCache::Create(options.group_cache));

  return std::unique_ptr<FlexMoESystem>(new FlexMoESystem(
      options, topo, profile, std::move(cache), std::move(initial)));
}

FlexMoESystem::FlexMoESystem(const FlexMoEOptions& options,
                             const Topology* topo,
                             const HardwareProfile* profile,
                             NcclGroupCache group_cache,
                             std::vector<Placement> initial)
    : options_(options),
      topo_(topo),
      profile_(profile),
      cluster_(topo),
      elastic_(options.num_gpus, topo,
               [&options] {
                 ElasticControllerOptions o = options.elastic;
                 o.elastic = true;  // FlexMoE always drains, never restarts
                 return o;
               }()),
      cost_model_(profile, ShapeFromModel(options.model)),
      policy_maker_(&cost_model_, options.policy),
      scheduler_(&policy_maker_,
                 [&options] {
                   SchedulerOptions o = options.scheduler;
                   // Auto-K: every trigger also re-plans the chunk depth.
                   if (options.pipeline.chunks == 0) o.plan_chunk_depth = true;
                   return o;
                 }()),
      group_cache_(std::move(group_cache)),
      step_executor_(&cluster_, profile, options.model),
      live_(initial),
      target_(std::move(initial)) {
  executors_.reserve(live_.size());
  for (size_t l = 0; l < live_.size(); ++l) {
    executors_.emplace_back(options_.executor, profile_,
                            options_.model.expert_state_bytes());
  }
  next_plan_step_.assign(live_.size(), 0);
  plan_backoff_.assign(live_.size(), 1);
  layer_chunks_.assign(live_.size(), 0);
  policy_maker_.SetClusterHealth(&elastic_.health());
  scheduler_.SetClusterHealth(&elastic_.health());
  step_executor_.set_cluster_health(&elastic_.health());
  step_executor_.set_pipeline(options.pipeline);
  // Placement planning always scores under the serial Eq. 5 combiner (the
  // cost model's default depth), whatever depth the executor runs: the
  // chunked combiner divides the wire terms by K, which compresses
  // inter-GPU differences and couples the balance objective to a knob
  // whose measured execution effect is sub-percent while its scoring
  // effect perturbs the plan trajectory by several percent. Chunk depth
  // is planned separately, AFTER placement, from the same partial sums
  // (BestChunkDepth — DESIGN.md §12.2).
}

Status FlexMoESystem::InstallFaultPlan(const FaultPlan& plan) {
  return elastic_.InstallPlan(plan);
}

void FlexMoESystem::SetObservability(obs::Observability* obs) {
  obs_ = obs;
  step_executor_.set_observability(obs);
  elastic_.SetObservability(obs);
  if (obs::Tracer* tr = obs::TracerOf(obs); tr != nullptr) {
    tr->set_num_gpus(options_.num_gpus);
  }
}

const Placement& FlexMoESystem::live_placement(int layer) const {
  FLEXMOE_CHECK(layer >= 0 && layer < static_cast<int>(live_.size()));
  return live_[static_cast<size_t>(layer)];
}

const Placement& FlexMoESystem::target_placement(int layer) const {
  FLEXMOE_CHECK(layer >= 0 && layer < static_cast<int>(target_.size()));
  return target_[static_cast<size_t>(layer)];
}

StepMetrics FlexMoESystem::RunStep(
    const std::vector<Assignment>& layer_assignments) {
  return RunStepImpl(layer_assignments, /*serving=*/false);
}

StepMetrics FlexMoESystem::ServeMicrobatch(
    const std::vector<Assignment>& layer_assignments) {
  return RunStepImpl(layer_assignments, /*serving=*/true);
}

StepMetrics FlexMoESystem::RunStepImpl(
    const std::vector<Assignment>& layer_assignments, bool serving) {
  FLEXMOE_CHECK(static_cast<int>(layer_assignments.size()) ==
                options_.model.num_moe_layers);
  const int num_layers = static_cast<int>(layer_assignments.size());
  StepMetrics metrics;
  metrics.step = step_;

  // 0. Elastic boundary: fire due cluster events, drain placements off
  //    departed devices, invalidate their NCCL groups. A membership change
  //    obsoletes every queued plan — pending ops are dropped and the
  //    targets resync to the repaired live placements.
  ElasticController::StepReport fault_report;
  if (elastic_.active()) {
    std::vector<Placement*> live_ptrs;
    live_ptrs.reserve(live_.size());
    for (Placement& p : live_) live_ptrs.push_back(&p);
    fault_report = elastic_.OnStepBoundary(
        step_, live_ptrs, &group_cache_, options_.model.expert_state_bytes());
    if (fault_report.membership_changed) {
      for (size_t l = 0; l < live_.size(); ++l) {
        executors_[l].ClearPending();
        for (const FaultEvent& e : fault_report.events) {
          if (e.type == FaultType::kFailStop || e.type == FaultType::kLeave) {
            executors_[l].DropOpsInvolving(e.gpu);
          }
        }
        target_[l] = live_[l];
      }
    }
    if (fault_report.membership_changed || fault_report.perf_changed) {
      next_plan_step_.assign(live_.size(), 0);
      plan_backoff_.assign(live_.size(), 1);
      // The depth that overlapped best on the old membership need not on
      // the new one — re-pick from the repaired placements this step.
      layer_chunks_.assign(live_.size(), 0);
    }
    metrics.faults_applied = static_cast<int>(fault_report.events.size());
    metrics.recovery_seconds = fault_report.recovery_seconds;
    // Degraded mode is a state, not an event: flag every step on which
    // some expert has no replica on a live device.
    if (!elastic_.health().AllHealthy()) {
      for (const Placement& p : live_) {
        if (ExpertsWithoutLiveReplica(p, elastic_.health()) > 0) {
          metrics.degraded = true;
          break;
        }
      }
    }
  }

  // The assignments the system actually trains on this step: sources on
  // departed devices re-shard onto survivors; tokens resident on a device
  // that just fail-stopped are lost.
  std::vector<Assignment> adjusted;
  const std::vector<Assignment>* effective = &layer_assignments;
  if (elastic_.NeedsAssignmentAdjustment()) {
    adjusted.reserve(layer_assignments.size());
    for (const Assignment& a : layer_assignments) {
      adjusted.push_back(elastic_.AdjustAssignment(a, &metrics.tokens_dropped));
    }
    effective = &adjusted;
  }

  // 1. Step boundary: completed background adjustments take effect on the
  //    live placements; the next batches launch best-effort.
  double boundary = step_executor_.Frontier();
  double blocking = fault_report.recovery_seconds;
  for (int l = 0; l < num_layers; ++l) {
    const PlacementExecutor::TickResult tick =
        executors_[static_cast<size_t>(l)].OnStepBoundary(
            boundary, &cluster_, &live_[static_cast<size_t>(l)],
            elastic_.active() ? &elastic_.health() : nullptr);
    metrics.ops_applied += tick.ops_applied;
    metrics.ops_launched += tick.ops_launched;
    blocking += tick.blocking_seconds;
  }
  if (blocking > 0.0) {
    cluster_.BlockAll(boundary, blocking);
    metrics.adjust_block_seconds = blocking;
  }
  if (obs::Tracer* tr = obs::TracerOf(obs_); tr != nullptr) {
    for (const FaultEvent& e : fault_report.events) {
      tr->Instant("fault_event", "recovery", obs::kControlLane, boundary,
                  "gpu", static_cast<double>(e.gpu));
    }
    if (blocking > 0.0) {
      tr->Span("recovery_block", "recovery", obs::kControlLane, boundary,
               boundary + blocking, "faults",
               static_cast<double>(fault_report.events.size()));
    }
  }

  // 1b. (training only) Pre-warm NCCL groups for the live placements —
  //     serving runs no replica collectives, so there is nothing to warm.
  //     Communicator
  //     bootstrap is host-side (CPU + sockets) work that overlaps with GPU
  //     execution and with the copy engines, so it costs nothing on either
  //     the training critical path or the background copy streams; the
  //     step executor below then always hits the warm cache. The LRU cache
  //     statistics still expose creation churn.
  const bool prune_dead_groups =
      elastic_.active() && elastic_.health().AnyDead();
  if (!serving) {
    for (const Placement& placement : live_) {
      for (int e = 0; e < placement.num_experts(); ++e) {
        std::vector<GpuId> group = placement.HostGpus(e);
        if (prune_dead_groups) {
          // Never bootstrap a communicator around a departed rank (only an
          // orphan's tombstone replica can put one in a group).
          group.erase(std::remove_if(group.begin(), group.end(),
                                     [this](GpuId g) {
                                       return !elastic_.health().alive(g);
                                     }),
                      group.end());
        }
        if (group.size() >= 2) group_cache_.Acquire(group);
      }
    }
  }

  // 2. Route every layer on its live placement.
  std::vector<RoutedAssignment> routed;
  routed.reserve(static_cast<size_t>(num_layers));
  double balance_sum = 0.0;
  for (int l = 0; l < num_layers; ++l) {
    routed.push_back(FlexibleRouter::Route(
        (*effective)[static_cast<size_t>(l)],
        live_[static_cast<size_t>(l)]));
    balance_sum += BalanceRatio(routed.back().PerGpuComputeLoads());
    metrics.tokens_total += routed.back().Total();
  }
  metrics.tokens_total += metrics.tokens_dropped;  // lost-in-flight tokens
  metrics.balance_ratio = balance_sum / num_layers;

  // 3. Execute the step on the event engine. Under auto-K each layer runs
  //    at its planned chunk depth; a layer that has never been planned
  //    (step 0, or the step after a membership change reset) picks its
  //    initial depth directly from this step's routed workload, so no step
  //    falls back to serial while waiting for a scheduler trigger.
  const bool auto_chunks = options_.pipeline.chunks == 0;
  std::vector<LayerWork> work(static_cast<size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    work[static_cast<size_t>(l)].routed = &routed[static_cast<size_t>(l)];
    work[static_cast<size_t>(l)].placement = &live_[static_cast<size_t>(l)];
    if (auto_chunks) {
      int& chunks = layer_chunks_[static_cast<size_t>(l)];
      if (chunks == 0) {
        const LayerCostEstimate est = cost_model_.EstimateLayer(
            routed[static_cast<size_t>(l)], live_[static_cast<size_t>(l)],
            /*include_sync=*/!policy_maker_.options().serve_objective);
        chunks = cost_model_.BestChunkDepth(est.per_gpu_compute,
                                            est.per_gpu_a2a, est.per_gpu_sync);
      }
      work[static_cast<size_t>(l)].chunks = chunks;
    }
  }
  const StepTiming timing =
      serving ? step_executor_.ExecuteForward(work)
              : step_executor_.ExecuteStep(work, &group_cache_);

  metrics.step_seconds = timing.StepSeconds() + blocking;
  metrics.a2a_seconds = timing.a2a_seconds;
  metrics.compute_seconds = timing.compute_seconds;
  metrics.sync_seconds = timing.sync_seconds;
  metrics.non_moe_seconds = timing.non_moe_seconds + timing.dp_sync_seconds;
  // FlexMoE never drops tokens by capacity; the only losses are tokens
  // resident on a device at the instant it fail-stopped.
  metrics.token_efficiency =
      metrics.tokens_total > 0
          ? static_cast<double>(metrics.tokens_total - metrics.tokens_dropped) /
                static_cast<double>(metrics.tokens_total)
          : 1.0;

  // Efficiency metrics from the engine's per-GPU expert-compute time.
  const auto& pc = timing.per_gpu_expert_compute;
  const double max_c = *std::max_element(pc.begin(), pc.end());
  double mean_c = 0.0;
  for (double v : pc) mean_c += v;
  // Efficiency is relative to the devices that exist: departed GPUs are
  // lost capacity, not inefficiency.
  mean_c /= static_cast<double>(
      elastic_.active() ? elastic_.health().num_alive()
                        : static_cast<int>(pc.size()));
  metrics.expert_efficiency = max_c > 0.0 ? mean_c / max_c : 1.0;
  metrics.gpu_utilization =
      metrics.step_seconds > 0.0
          ? (mean_c + timing.non_moe_seconds) / metrics.step_seconds
          : 0.0;

  // 4. Scheduler: monitor this step's workloads, plan modifications on the
  //    target placements, enqueue them for best-effort execution. Planning
  //    happens against the target (which already reflects queued ops), so
  //    it can track workload drift every step; the pending-op cap guards
  //    against plans outrunning the background streams (stale tail is
  //    dropped and the target resyncs to the live state).
  for (int l = 0; l < num_layers; ++l) {
    auto& executor = executors_[static_cast<size_t>(l)];
    if (static_cast<int>(executor.pending_ops()) > options_.max_pending_ops) {
      executor.ClearPending();
      target_[static_cast<size_t>(l)] = live_[static_cast<size_t>(l)];
      continue;  // re-plan from the fresh state next step
    }
    if (step_ < next_plan_step_[static_cast<size_t>(l)]) continue;
    const bool force_trigger =
        fault_report.membership_changed || fault_report.perf_changed;
    // The layer's current depth — including the provisional step-0 pick,
    // which the same selection rule produced — anchors the scheduler's
    // retention hysteresis.
    const int chunk_incumbent =
        auto_chunks ? layer_chunks_[static_cast<size_t>(l)] : 0;
    const SchedulerDecision decision = scheduler_.OnStep(
        step_, (*effective)[static_cast<size_t>(l)],
        &target_[static_cast<size_t>(l)], force_trigger, chunk_incumbent);
    if (auto_chunks && decision.pipeline_chunks > 0) {
      layer_chunks_[static_cast<size_t>(l)] = decision.pipeline_chunks;
    }
    if (!decision.ops.empty()) {
      executor.Enqueue(decision.ops);
    }
    // Audit trail: one record per scheduler invocation (steps skipped by
    // the backoff produce none — the gap IS part of the measured policy
    // lag).
    if (obs::DecisionLog* dl = obs::DecisionsOf(obs_); dl != nullptr) {
      obs::PolicyDecisionRecord rec;
      rec.step = step_;
      rec.layer = l;
      rec.trigger_metric = decision.metric_before;
      rec.threshold = scheduler_.options().metric == TriggerMetric::kMaxRatio
                          ? scheduler_.options().threshold
                          : scheduler_.options().variance_threshold;
      rec.forced = force_trigger;
      rec.triggered = decision.triggered;
      rec.candidates_evaluated = decision.candidates_evaluated;
      rec.plan_rounds = decision.plan_rounds;
      rec.migrations = decision.migrations;
      rec.evacuations = decision.evacuations;
      rec.ops_emitted = static_cast<int>(decision.ops.size());
      rec.est_score_before = decision.est_score_before;
      rec.est_score_after = decision.est_score_after;
      rec.metric_after = decision.metric_after;
      rec.realized_balance = metrics.balance_ratio;
      for (const ModOp& op : decision.ops) {
        if (!rec.ops.empty()) rec.ops += ';';
        rec.ops += op.ToString();
      }
      dl->Add(std::move(rec));
    }
    if (obs::Tracer* tr = obs::TracerOf(obs_);
        tr != nullptr && decision.triggered) {
      tr->Instant("policy_decision", "policy", obs::kPolicyLane, timing.end,
                  "ops", static_cast<double>(decision.ops.size()));
    }
    if (obs::MetricsRegistry* m = obs::MetricsOf(obs_); m != nullptr) {
      m->Add("policy.invocations");
      if (decision.triggered) m->Add("policy.triggers");
      if (decision.candidates_evaluated > 0) {
        m->Add("policy.candidates_evaluated", decision.candidates_evaluated);
      }
      if (decision.plan_rounds > 0) {
        m->Add("policy.plan_rounds", decision.plan_rounds);
      }
      if (!decision.ops.empty()) {
        m->Add("policy.ops_enqueued",
               static_cast<int64_t>(decision.ops.size()));
      }
      if (decision.migrations > 0) {
        m->Add("policy.migrations", decision.migrations);
      }
      if (decision.evacuations > 0) {
        m->Add("policy.evacuations", decision.evacuations);
      }
    }
    // Backoff: a trigger that found no beneficial modification means the
    // placement is at its feasibility floor for this workload; searching
    // again next step would find the same answer.
    auto& backoff = plan_backoff_[static_cast<size_t>(l)];
    if (decision.triggered && decision.plan_rounds == 0) {
      next_plan_step_[static_cast<size_t>(l)] = step_ + backoff;
      backoff = std::min(backoff * 2, 16);
    } else {
      backoff = 1;
    }
  }

  if (obs::MetricsRegistry* m = obs::MetricsOf(obs_); m != nullptr) {
    m->Add(serving ? "serve.microbatches" : "train.steps");
    m->Add("tokens.total", metrics.tokens_total);
    if (metrics.tokens_dropped > 0) {
      m->Add("tokens.dropped", metrics.tokens_dropped);
    }
    if (metrics.faults_applied > 0) {
      m->Add("faults.applied", metrics.faults_applied);
    }
    m->Observe("step.seconds", metrics.step_seconds);
    m->Observe("step.balance_ratio", metrics.balance_ratio);
  }

  ++step_;
  stats_.Add(metrics);
  return metrics;
}

}  // namespace flexmoe
