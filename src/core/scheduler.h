// Scheduler (paper Algorithm 1): monitors real-time workloads, triggers the
// Policy Maker when the balance metric exceeds its threshold, iterates
// Expand/Shrink planning until no beneficial modification remains, then
// plans background Migrations to consolidate replica groups.
//
// Trigger variants reproduced for the ablations:
//  * metric: Max balance ratio (Eq. 6, the paper's choice) vs. Variance
//    (Fig. 6a);
//  * policy: dynamic threshold-based (the paper's choice) vs. static
//    fixed-interval re-planning (Fig. 6b).

#ifndef FLEXMOE_CORE_SCHEDULER_H_
#define FLEXMOE_CORE_SCHEDULER_H_

#include <vector>

#include "core/policy_maker.h"

namespace flexmoe {

enum class TriggerMetric { kMaxRatio, kVariance };
enum class TriggerPolicy { kDynamic, kStaticInterval };

const char* TriggerMetricName(TriggerMetric m);
const char* TriggerPolicyName(TriggerPolicy p);

/// \brief Scheduler configuration.
struct SchedulerOptions {
  TriggerMetric metric = TriggerMetric::kMaxRatio;
  TriggerPolicy policy = TriggerPolicy::kDynamic;

  /// Trigger threshold. For kMaxRatio this is the balance ratio (>= 1);
  /// for kVariance it is the coefficient of variation of per-GPU loads.
  double threshold = 1.15;
  double variance_threshold = 0.08;

  /// kStaticInterval: re-plan every this many steps regardless of balance.
  int static_interval_steps = 50;

  /// Bound on Algorithm 1's inner planning loop per trigger.
  int max_plan_iterations = 16;

  /// Background migrations planned per trigger (0 disables Migrate).
  int max_migrations = 4;

  /// Migrate-away ops planned per trigger while some device is degraded
  /// (0 disables evacuation).
  int max_evacuations = 8;

  /// Auto-K (DESIGN.md §12): on every triggered invocation, evaluate the
  /// chunk-depth candidates against the planned placement's cached Eq. 5
  /// partials and publish the argmin as SchedulerDecision::pipeline_chunks.
  /// Off by default — the decision struct then reports 0 (no
  /// recommendation) and the scheduler is byte-identical to the static-K
  /// configuration.
  bool plan_chunk_depth = false;

  Status Validate() const;
};

/// \brief Outcome of one scheduler invocation.
struct SchedulerDecision {
  bool triggered = false;
  int plan_rounds = 0;           ///< Expand/Shrink pairs accepted
  int migrations = 0;
  int evacuations = 0;           ///< migrate-away ops off degraded devices
  double metric_before = 0.0;
  double metric_after = 0.0;
  /// Candidate placements scored through the cost model across all plan
  /// rounds (the policy decision audit's search cost).
  int64_t candidates_evaluated = 0;
  /// Eq. 5 plan score of the incumbent placement at the first plan round
  /// (0 when the trigger never reached the plan loop).
  double est_score_before = 0.0;
  /// Best plan score after the last accepted round (== est_score_before
  /// when no plan was accepted).
  double est_score_after = 0.0;
  /// Recommended pipeline chunk depth for this layer under the planned
  /// placement (SchedulerOptions::plan_chunk_depth); 0 = no
  /// recommendation (option off or the invocation did not trigger).
  int pipeline_chunks = 0;
  /// Ops in dependency order, ready for the PlacementExecutor.
  std::vector<ModOp> ops;
};

/// \brief Implements Algorithm 1 against a target placement.
///
/// The target placement reflects all planned modifications immediately (the
/// Policy Maker must see its own previous decisions); the executor applies
/// them to the live placement as transfers complete.
class Scheduler {
 public:
  Scheduler(const PolicyMaker* policy_maker, const SchedulerOptions& options);

  /// Installs the dynamic-membership view (nullable). A version change in
  /// the health registry — capacity lost to a failure or a straggler,
  /// capacity regained on a join — forces a trigger irrespective of the
  /// balance metric, and a trigger with degraded devices present plans
  /// migrate-away ops before the balance loop.
  void SetClusterHealth(const ClusterHealth* health) { health_ = health; }

  /// Runs the Algorithm 1 body for one step's workload. Mutates `target`.
  /// `force_trigger` bypasses the metric threshold (used by the elastic
  /// controller on the boundary where cluster events fired).
  /// `chunk_incumbent` is the chunk depth the layer currently executes
  /// with under auto-K, if that depth came from an earlier recommendation
  /// of this scheduler: the depth plan engages BestChunkDepth's switching
  /// hysteresis against it. 0 = no incumbent (first plan for the layer, or
  /// depth planning disabled) — the recommendation is the raw argmin.
  SchedulerDecision OnStep(int64_t step, const Assignment& assignment,
                           Placement* target, bool force_trigger = false,
                           int chunk_incumbent = 0);

  const SchedulerOptions& options() const { return options_; }

  /// The metric value the scheduler would compute for this workload.
  double MetricOf(const Assignment& assignment,
                  const Placement& placement) const;

 private:
  bool ShouldTrigger(int64_t step, double metric_value) const;

  /// The trigger metric over integer per-GPU compute loads.
  double MetricFromTokens(const std::vector<int64_t>& tokens) const;

  const PolicyMaker* policy_maker_;
  SchedulerOptions options_;
  const ClusterHealth* health_ = nullptr;
  /// Scratch for MetricOf (allocation-free steady state) and the
  /// incremental planning state the plan loop amortizes its Reset over —
  /// one Reset per trigger, O(Δ) per candidate afterwards.
  mutable RoutedAssignment metric_scratch_;
  mutable std::vector<int64_t> tokens_scratch_;
  mutable std::vector<double> loads_scratch_;
  LayerCostState plan_state_;
  /// Last health version observed by OnStep, and the step on which the
  /// change was seen — every layer's OnStep call for that step triggers.
  int64_t last_health_version_ = 0;
  int64_t capacity_trigger_step_ = -1;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_SCHEDULER_H_
