// Scheduler (paper Algorithm 1): monitors real-time workloads, triggers the
// Policy Maker when the balance metric exceeds its threshold, iterates
// Expand/Shrink planning until no beneficial modification remains, then
// plans background Migrations to consolidate replica groups.
//
// Trigger variants reproduced for the ablations:
//  * metric: Max balance ratio (Eq. 6, the paper's choice) vs. Variance
//    (Fig. 6a);
//  * policy: dynamic threshold-based (the paper's choice) vs. static
//    fixed-interval re-planning (Fig. 6b).

#ifndef FLEXMOE_CORE_SCHEDULER_H_
#define FLEXMOE_CORE_SCHEDULER_H_

#include <vector>

#include "core/policy_maker.h"

namespace flexmoe {

enum class TriggerMetric { kMaxRatio, kVariance };
enum class TriggerPolicy { kDynamic, kStaticInterval };

const char* TriggerMetricName(TriggerMetric m);
const char* TriggerPolicyName(TriggerPolicy p);

/// \brief Scheduler configuration.
struct SchedulerOptions {
  TriggerMetric metric = TriggerMetric::kMaxRatio;
  TriggerPolicy policy = TriggerPolicy::kDynamic;

  /// Trigger threshold. For kMaxRatio this is the balance ratio (>= 1);
  /// for kVariance it is the coefficient of variation of per-GPU loads.
  double threshold = 1.15;
  double variance_threshold = 0.08;

  /// kStaticInterval: re-plan every this many steps regardless of balance.
  int static_interval_steps = 50;

  /// Bound on Algorithm 1's inner planning loop per trigger.
  int max_plan_iterations = 16;

  /// Background migrations planned per trigger (0 disables Migrate).
  int max_migrations = 4;

  Status Validate() const;
};

/// \brief Outcome of one scheduler invocation.
struct SchedulerDecision {
  bool triggered = false;
  int plan_rounds = 0;           ///< Expand/Shrink pairs accepted
  int migrations = 0;
  double metric_before = 0.0;
  double metric_after = 0.0;
  /// Ops in dependency order, ready for the PlacementExecutor.
  std::vector<ModOp> ops;
};

/// \brief Implements Algorithm 1 against a target placement.
///
/// The target placement reflects all planned modifications immediately (the
/// Policy Maker must see its own previous decisions); the executor applies
/// them to the live placement as transfers complete.
class Scheduler {
 public:
  Scheduler(const PolicyMaker* policy_maker, const SchedulerOptions& options);

  /// Runs the Algorithm 1 body for one step's workload. Mutates `target`.
  SchedulerDecision OnStep(int64_t step, const Assignment& assignment,
                           Placement* target);

  const SchedulerOptions& options() const { return options_; }

  /// The metric value the scheduler would compute for this workload.
  double MetricOf(const Assignment& assignment,
                  const Placement& placement) const;

 private:
  bool ShouldTrigger(int64_t step, double metric_value) const;

  const PolicyMaker* policy_maker_;
  SchedulerOptions options_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_SCHEDULER_H_
