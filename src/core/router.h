// Flexible token routing (paper Algorithm 3).
//
// Given the gate's assignment I (tokens per expert per source GPU) and the
// current placement P, decide which replica processes each token:
//   1. capacity per vExpert of expert e is cap_e = ceil(I_e / n_e) — even
//      partitioning across the expert's vExperts (Section 3.2);
//   2. locality first: tokens stay on their source GPU up to the local
//      replica quota (cap_e x n_{e,g});
//   3. the remainder spills to other replicas proportionally to their
//      remaining available capacity.
// Routing never drops or invents tokens (token conservation is property-
// tested in router_test.cc).

#ifndef FLEXMOE_CORE_ROUTER_H_
#define FLEXMOE_CORE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "moe/moe_layer.h"
#include "placement/placement.h"
#include "util/matrix.h"

namespace flexmoe {

/// \brief The routing outcome for one MoE layer at one step.
struct RoutedAssignment {
  int num_experts = 0;
  int num_gpus = 0;

  /// expert_gpu_tokens[e][g]: tokens of expert e computed on GPU g.
  Matrix<int64_t> expert_gpu_tokens;

  /// dispatch_to[dst][src]: tokens moved from source GPU src to compute
  /// GPU dst (src == dst entries are device-local). Stored destination-
  /// major because both hot loops walk a fixed destination across all
  /// sources: the router's spill writes (every spilling source sends to
  /// one of the expert's few hosts) and Eq. 8's inbound fold. Source-major
  /// storage made each of those a G-stride scatter — at G = 512 one fresh
  /// cacheline+TLB line per source, the dominant cost of a re-route.
  Matrix<int64_t> dispatch_to;

  /// Convenience accessors in (src, dst) order.
  int64_t dispatch(GpuId src, GpuId dst) const { return dispatch_to(dst, src); }
  int64_t& dispatch(GpuId src, GpuId dst) { return dispatch_to(dst, src); }

  /// Optional hierarchical aggregation (DESIGN.md Section 10): when
  /// `node_of` is non-empty (size num_gpus), routing additionally
  /// maintains node_dispatch_to[dst][n] == sum of dispatch(src, dst) over
  /// the sources on node n. Pure integer bookkeeping, so it commutes
  /// exactly with FlexibleRouter::AccumulateExpert — the aggregates always
  /// equal a from-scratch fold of the dispatch matrix.
  std::vector<int> node_of;
  int num_nodes = 0;
  Matrix<int64_t> node_dispatch_to;

  int64_t node_dispatch(NodeId node, GpuId dst) const {
    return node_dispatch_to(dst, node);
  }

  /// Turns per-node aggregation on for this routing. If a dispatch matrix
  /// is already populated, the aggregates are rebuilt from it; otherwise
  /// the next RouteInto sizes and fills them.
  void EnableNodeAggregation(const Topology& topo);
  void DisableNodeAggregation();

  /// Tokens of expert computation landing on each GPU.
  std::vector<int64_t> PerGpuComputeTokens() const;
  void PerGpuComputeTokensInto(std::vector<int64_t>* out) const;
  std::vector<double> PerGpuComputeLoads() const;

  /// Total routed tokens (== I.Total() for lossless routing).
  int64_t Total() const;

  /// Tokens that crossed GPUs (dispatch off-diagonal mass).
  int64_t CrossGpuTokens() const;
};

/// \brief Stateless implementation of Algorithm 3.
class FlexibleRouter {
 public:
  /// Routes `assignment` under `placement`. Requires matching shapes.
  static RoutedAssignment Route(const Assignment& assignment,
                                const Placement& placement);

  /// Routes into caller-owned scratch, reusing its matrix allocations —
  /// the allocation-free steady-state form of Route (scratch-ownership
  /// rules: DESIGN.md "Performance architecture"). Preserves `out`'s node
  /// aggregation setting.
  static void RouteInto(const Assignment& assignment,
                        const Placement& placement, RoutedAssignment* out);

  /// Adds (`sign` = +1) or removes (`sign` = -1) expert `e`'s routing
  /// contribution to/from `out`. Each expert routes independently of the
  /// others (its quota/avail/spill state is per-expert), so
  ///   Route(A, P')  ==  Route(A, P)
  ///                     - contributions of changed experts under P
  ///                     + contributions of changed experts under P'
  /// holds EXACTLY (integer arithmetic). The Policy Maker uses this to
  /// evaluate candidate placements that touch two experts without paying a
  /// full O(E x G^2) re-route per candidate.
  static void AccumulateExpert(const Assignment& assignment,
                               const Placement& placement, int expert,
                               int sign, RoutedAssignment* out);
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_ROUTER_H_
