// Flexible token routing (paper Algorithm 3).
//
// Given the gate's assignment I (tokens per expert per source GPU) and the
// current placement P, decide which replica processes each token:
//   1. capacity per vExpert of expert e is cap_e = ceil(I_e / n_e) — even
//      partitioning across the expert's vExperts (Section 3.2);
//   2. locality first: tokens stay on their source GPU up to the local
//      replica quota (cap_e x n_{e,g});
//   3. the remainder spills to other replicas proportionally to their
//      remaining available capacity.
// Routing never drops or invents tokens (token conservation is property-
// tested in router_test.cc).

#ifndef FLEXMOE_CORE_ROUTER_H_
#define FLEXMOE_CORE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "moe/moe_layer.h"
#include "placement/placement.h"
#include "util/matrix.h"

namespace flexmoe {

/// \brief The routing outcome for one MoE layer at one step.
struct RoutedAssignment {
  int num_experts = 0;
  int num_gpus = 0;

  /// expert_gpu_tokens[e][g]: tokens of expert e computed on GPU g.
  Matrix<int64_t> expert_gpu_tokens;

  /// dispatch[src][dst]: tokens moved from source GPU src to compute GPU
  /// dst (src == dst entries are device-local).
  Matrix<int64_t> dispatch;

  /// Tokens of expert computation landing on each GPU.
  std::vector<int64_t> PerGpuComputeTokens() const;
  std::vector<double> PerGpuComputeLoads() const;

  /// Total routed tokens (== I.Total() for lossless routing).
  int64_t Total() const;

  /// Tokens that crossed GPUs (dispatch off-diagonal mass).
  int64_t CrossGpuTokens() const;
};

/// \brief Stateless implementation of Algorithm 3.
class FlexibleRouter {
 public:
  /// Routes `assignment` under `placement`. Requires matching shapes.
  static RoutedAssignment Route(const Assignment& assignment,
                                const Placement& placement);

  /// Adds (`sign` = +1) or removes (`sign` = -1) expert `e`'s routing
  /// contribution to/from `out`. Each expert routes independently of the
  /// others (its quota/avail/spill state is per-expert), so
  ///   Route(A, P')  ==  Route(A, P)
  ///                     - contributions of changed experts under P
  ///                     + contributions of changed experts under P'
  /// holds EXACTLY (integer arithmetic). The Policy Maker uses this to
  /// evaluate candidate placements that touch two experts without paying a
  /// full O(E x G^2) re-route per candidate.
  static void AccumulateExpert(const Assignment& assignment,
                               const Placement& placement, int expert,
                               int sign, RoutedAssignment* out);
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_ROUTER_H_
