// Flexible token routing (paper Algorithm 3).
//
// Given the gate's assignment I (tokens per expert per source GPU) and the
// current placement P, decide which replica processes each token:
//   1. capacity per vExpert of expert e is cap_e = ceil(I_e / n_e) — even
//      partitioning across the expert's vExperts (Section 3.2);
//   2. locality first: tokens stay on their source GPU up to the local
//      replica quota (cap_e x n_{e,g});
//   3. the remainder spills to other replicas proportionally to their
//      remaining available capacity.
// Routing never drops or invents tokens (token conservation is property-
// tested in router_test.cc).

#ifndef FLEXMOE_CORE_ROUTER_H_
#define FLEXMOE_CORE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "moe/moe_layer.h"
#include "placement/placement.h"

namespace flexmoe {

/// \brief The routing outcome for one MoE layer at one step.
struct RoutedAssignment {
  int num_experts = 0;
  int num_gpus = 0;

  /// expert_gpu_tokens[e][g]: tokens of expert e computed on GPU g.
  std::vector<std::vector<int64_t>> expert_gpu_tokens;

  /// dispatch[src][dst]: tokens moved from source GPU src to compute GPU
  /// dst (src == dst entries are device-local).
  std::vector<std::vector<int64_t>> dispatch;

  /// Tokens of expert computation landing on each GPU.
  std::vector<int64_t> PerGpuComputeTokens() const;
  std::vector<double> PerGpuComputeLoads() const;

  /// Total routed tokens (== I.Total() for lossless routing).
  int64_t Total() const;

  /// Tokens that crossed GPUs (dispatch off-diagonal mass).
  int64_t CrossGpuTokens() const;
};

/// \brief Stateless implementation of Algorithm 3.
class FlexibleRouter {
 public:
  /// Routes `assignment` under `placement`. Requires matching shapes.
  static RoutedAssignment Route(const Assignment& assignment,
                                const Placement& placement);
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_ROUTER_H_
