// Shared engine-level execution of one training step. FlexMoE and every
// baseline system express a step as a list of LayerWork items (routing +
// placement + optional extras) and delegate the simulated execution here,
// so all systems are timed by the identical machinery:
//
//   forward:  per layer — [shadow broadcasts] -> dispatch A2A -> expert
//             compute (1/3 of fwd+bwd FLOPs) -> combine A2A
//   middle:   non-MoE compute (attention, dense FFNs, gate, optimizer)
//   backward: per layer, reverse order — grad dispatch A2A -> expert
//             compute (2/3) -> grad combine A2A
//   sync:     per replicated expert, AllReduce in ascending logical-id
//             order (deadlock-free posting), NCCL groups via LRU cache;
//             then the data-parallel AllReduce of non-MoE gradients.

#ifndef FLEXMOE_CORE_STEP_EXECUTOR_H_
#define FLEXMOE_CORE_STEP_EXECUTOR_H_

#include <vector>

#include "collective/engine_ops.h"
#include "collective/nccl_group.h"
#include "core/router.h"
#include "elastic/cluster_health.h"
#include "moe/model_config.h"
#include "obs/observability.h"
#include "placement/placement.h"

namespace flexmoe {

/// \brief One shadow-parameter broadcast (FasterMoE baseline).
struct ShadowBroadcast {
  GpuId root = 0;
  double bytes = 0.0;
};

/// \brief Everything needed to execute one MoE layer.
struct LayerWork {
  const RoutedAssignment* routed = nullptr;
  /// Placement for replica synchronization; nullptr => no replica sync
  /// (e.g. plain expert parallelism).
  const Placement* placement = nullptr;
  /// Extra synchronization groups beyond the placement-derived ones
  /// (e.g. FasterMoE's global shadow-gradient AllReduce).
  std::vector<std::vector<GpuId>> extra_sync_groups;
  std::vector<ShadowBroadcast> broadcasts;
};

/// \brief Timing of one executed step.
struct StepTiming {
  double start = 0.0;
  double end = 0.0;
  double a2a_seconds = 0.0;
  double compute_seconds = 0.0;
  /// Expert-replica synchronization on the critical path: only the tail
  /// that outlasts the backward pass (syncs overlap with backward).
  double sync_seconds = 0.0;
  /// Total expert-sync activity regardless of overlap (launch-to-finish
  /// summed over collectives); measures the sync work replication costs
  /// even when it hides behind backward compute.
  double sync_busy_seconds = 0.0;
  /// Data-parallel AllReduce of non-MoE gradients (every system pays it).
  double dp_sync_seconds = 0.0;
  double non_moe_seconds = 0.0;
  /// Expert-compute busy seconds per GPU this step (efficiency metrics).
  std::vector<double> per_gpu_expert_compute;

  double StepSeconds() const { return end - start; }
};

/// \brief Executes steps on the discrete-event cluster.
class StepExecutor {
 public:
  StepExecutor(ClusterState* cluster, const HardwareProfile* profile,
               const ModelConfig& model);

  /// Executes one full step; `group_cache` may be nullptr (no group costs).
  StepTiming ExecuteStep(const std::vector<LayerWork>& layers,
                         NcclGroupCache* group_cache);

  /// Executes a forward-only pass (the serving path, DESIGN.md Section 8):
  /// per layer — [shadow broadcasts] -> dispatch A2A -> expert compute at
  /// forward FLOPs -> combine A2A — then the non-MoE forward compute. No
  /// backward, no expert/data-parallel gradient sync, no optimizer; the
  /// timing therefore measures the latency of answering one microbatch.
  /// `layers` may contain more entries than the model has MoE layers
  /// (recirculation passes append extra LayerWork); the non-MoE forward
  /// cost is charged once regardless.
  StepTiming ExecuteForward(const std::vector<LayerWork>& layers);

  /// The earliest time all training-critical streams are free — the start
  /// of the next step.
  double Frontier() const;

  /// Installs the dynamic-membership view (nullable; default: a static,
  /// healthy cluster). Dead devices take part in no phase of the step;
  /// degraded devices run compute and move bytes at their multipliers.
  void set_cluster_health(const ClusterHealth* health) { health_ = health; }
  const ClusterHealth* cluster_health() const { return health_; }

  /// Installs the per-run observability handle (nullable). With tracing
  /// enabled, every step phase emits per-GPU spans — dispatch/combine A2A,
  /// expert compute (forward, backward, recirculation), expert sync, DP
  /// sync — stamped with the engine's sim times.
  void set_observability(obs::Observability* obs) { obs_ = obs; }

 private:
  obs::Tracer* trace() const { return obs::TracerOf(obs_); }
  bool Alive(GpuId g) const { return health_ == nullptr || health_->alive(g); }
  double ComputeScale(GpuId g) const {
    return health_ == nullptr ? 1.0 : health_->compute_multiplier(g);
  }
  /// Ring collectives run at the slowest member's pace: scale their bytes
  /// by the worst bandwidth multiplier in the group.
  double GroupBandwidthScale(const std::vector<GpuId>& group) const;
  /// All currently alive GPUs, ascending.
  std::vector<GpuId> AliveGpus() const;
  /// Builds the dispatch byte matrix (optionally transposed for combine)
  /// into a reusable scratch buffer. The returned reference is valid until
  /// the next DispatchBytes call on this executor.
  const ByteMatrix& DispatchBytes(const RoutedAssignment& routed,
                                  bool transpose) const;

  /// Runs expert compute for one layer with the given FLOPs/token; returns
  /// the phase finish time. `span_name` labels the per-GPU trace spans
  /// (must be a string literal); `layer` is their arg.
  double RunExpertCompute(const RoutedAssignment& routed,
                          double flops_per_token,
                          const std::vector<double>& per_gpu_earliest,
                          StepTiming* timing, const char* span_name,
                          int layer);

  /// The forward pass over `layers` — [shadow broadcasts] -> dispatch A2A
  /// -> expert compute at forward FLOPs -> combine A2A, per layer —
  /// shared verbatim by ExecuteStep and ExecuteForward so the two paths
  /// can never diverge in dispatch/broadcast semantics. Returns the new
  /// frontier.
  double RunForwardLayers(const std::vector<LayerWork>& layers,
                          const std::vector<GpuId>& alive, double frontier,
                          StepTiming* timing);

  ClusterState* cluster_;
  const HardwareProfile* profile_;
  ModelConfig model_;
  const ClusterHealth* health_ = nullptr;
  obs::Observability* obs_ = nullptr;
  /// Per-call scratch owned by the executor (see DESIGN.md "Performance
  /// architecture"); mutable because DispatchBytes is logically const.
  mutable ByteMatrix dispatch_bytes_scratch_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_STEP_EXECUTOR_H_
