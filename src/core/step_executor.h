// Shared engine-level execution of one training step. FlexMoE and every
// baseline system express a step as a list of LayerWork items (routing +
// placement + optional extras) and delegate the simulated execution here,
// so all systems are timed by the identical machinery:
//
//   forward:  per layer — [shadow broadcasts] -> dispatch A2A -> expert
//             compute (1/3 of fwd+bwd FLOPs) -> combine A2A
//   middle:   non-MoE compute (attention, dense FFNs, gate, optimizer)
//   backward: per layer, reverse order — grad dispatch A2A -> expert
//             compute (2/3) -> grad combine A2A
//   sync:     per replicated expert, AllReduce in ascending logical-id
//             order (deadlock-free posting), NCCL groups via LRU cache;
//             then the data-parallel AllReduce of non-MoE gradients.

#ifndef FLEXMOE_CORE_STEP_EXECUTOR_H_
#define FLEXMOE_CORE_STEP_EXECUTOR_H_

#include <vector>

#include "collective/engine_ops.h"
#include "collective/nccl_group.h"
#include "core/router.h"
#include "elastic/cluster_health.h"
#include "moe/model_config.h"
#include "obs/observability.h"
#include "placement/placement.h"

namespace flexmoe {

/// \brief One shadow-parameter broadcast (FasterMoE baseline).
struct ShadowBroadcast {
  GpuId root = 0;
  double bytes = 0.0;
};

/// \brief Forward-pass pipelining configuration (DESIGN.md Section 11).
///
/// With chunks > 1, each MoE layer's routed tokens split into `chunks`
/// per-cell pieces (cell v contributes v*(k+1)/chunks - v*k/chunks tokens
/// to chunk k — integer-exact, sums to v, last chunk is the ceil) and the
/// per-chunk dispatch A2A, expert compute, and combine A2A overlap through
/// the per-GPU stream reservations: chunk k+1's dispatch occupies the NIC
/// while chunk k computes, and combines drain behind compute. Both MoE
/// legs pipeline: the backward grad dispatch/compute/grad combine chunk
/// the same way (DESIGN.md Section 12). chunks == 1 is the serial path,
/// byte-identical to the pre-pipelining executor. chunks == 0 is auto-K:
/// the depth is planned per layer and arrives via LayerWork::chunks;
/// layers with no planned depth yet run serial.
struct PipelineOptions {
  int chunks = 1;

  Status Validate() const;
};

/// \brief Everything needed to execute one MoE layer.
struct LayerWork {
  const RoutedAssignment* routed = nullptr;
  /// Placement for replica synchronization; nullptr => no replica sync
  /// (e.g. plain expert parallelism).
  const Placement* placement = nullptr;
  /// Extra synchronization groups beyond the placement-derived ones
  /// (e.g. FasterMoE's global shadow-gradient AllReduce).
  std::vector<std::vector<GpuId>> extra_sync_groups;
  std::vector<ShadowBroadcast> broadcasts;
  /// Per-layer pipeline chunk depth override (auto-K planning). 0 defers
  /// to PipelineOptions::chunks; > 0 pins this layer's depth.
  int chunks = 0;
};

/// \brief Timing of one executed step.
struct StepTiming {
  double start = 0.0;
  double end = 0.0;
  double a2a_seconds = 0.0;
  double compute_seconds = 0.0;
  /// Expert-replica synchronization on the critical path: only the tail
  /// that outlasts the backward pass (syncs overlap with backward).
  double sync_seconds = 0.0;
  /// Total expert-sync activity regardless of overlap (launch-to-finish
  /// summed over collectives); measures the sync work replication costs
  /// even when it hides behind backward compute.
  double sync_busy_seconds = 0.0;
  /// Data-parallel AllReduce of non-MoE gradients (every system pays it).
  double dp_sync_seconds = 0.0;
  double non_moe_seconds = 0.0;
  /// Expert-compute busy seconds per GPU this step (efficiency metrics).
  std::vector<double> per_gpu_expert_compute;

  double StepSeconds() const { return end - start; }
};

/// \brief Executes steps on the discrete-event cluster.
class StepExecutor {
 public:
  StepExecutor(ClusterState* cluster, const HardwareProfile* profile,
               const ModelConfig& model);

  /// Executes one full step; `group_cache` may be nullptr (no group costs).
  StepTiming ExecuteStep(const std::vector<LayerWork>& layers,
                         NcclGroupCache* group_cache);

  /// Executes a forward-only pass (the serving path, DESIGN.md Section 8):
  /// per layer — [shadow broadcasts] -> dispatch A2A -> expert compute at
  /// forward FLOPs -> combine A2A — then the non-MoE forward compute. No
  /// backward, no expert/data-parallel gradient sync, no optimizer; the
  /// timing therefore measures the latency of answering one microbatch.
  /// `layers` may contain more entries than the model has MoE layers
  /// (recirculation passes append extra LayerWork); the non-MoE forward
  /// cost is charged once regardless.
  StepTiming ExecuteForward(const std::vector<LayerWork>& layers);

  /// The earliest time all training-critical streams are free — the start
  /// of the next step.
  double Frontier() const;

  /// Installs the dynamic-membership view (nullable; default: a static,
  /// healthy cluster). Dead devices take part in no phase of the step;
  /// degraded devices run compute and move bytes at their multipliers.
  void set_cluster_health(const ClusterHealth* health) { health_ = health; }
  const ClusterHealth* cluster_health() const { return health_; }

  /// Installs the pipelining configuration (chunks must be >= 0;
  /// chunks == 1 keeps the serial, byte-identical path; chunks == 0 is
  /// auto-K — per-layer depths come from LayerWork::chunks).
  void set_pipeline(const PipelineOptions& pipeline) { pipeline_ = pipeline; }
  const PipelineOptions& pipeline() const { return pipeline_; }

  /// Installs the per-run observability handle (nullable). With tracing
  /// enabled, every step phase emits per-GPU spans — dispatch/combine A2A,
  /// expert compute (forward, backward, recirculation), expert sync, DP
  /// sync — stamped with the engine's sim times.
  void set_observability(obs::Observability* obs) { obs_ = obs; }

 private:
  obs::Tracer* trace() const { return obs::TracerOf(obs_); }
  bool Alive(GpuId g) const { return health_ == nullptr || health_->alive(g); }
  double ComputeScale(GpuId g) const {
    return health_ == nullptr ? 1.0 : health_->compute_multiplier(g);
  }
  /// Per-GPU NIC-port stretch factors from the health view, or nullptr on
  /// a static healthy cluster. Passed to every collective so a straggler
  /// stretches exactly its own ports, exactly once — never the healthy
  /// peers' (the engine-level port_scale contract, engine_ops.h).
  const std::vector<double>* BandwidthScales() const;
  /// All currently alive GPUs, ascending.
  std::vector<GpuId> AliveGpus() const;
  /// Builds the dispatch byte matrix (optionally transposed for combine)
  /// into a reusable scratch buffer. The returned reference is valid until
  /// the next DispatchBytes call on this executor.
  const ByteMatrix& DispatchBytes(const RoutedAssignment& routed,
                                  bool transpose) const;
  /// Chunk k of K of the dispatch byte matrix (per-cell split rule of
  /// PipelineOptions) into a second scratch; valid until the next call.
  const ByteMatrix& DispatchBytesChunk(const RoutedAssignment& routed,
                                       bool transpose, int k, int K) const;

  /// Runs expert compute for one layer with the given FLOPs/token; returns
  /// the phase finish time. `span_name` labels the per-GPU trace spans
  /// (must be a string literal); `layer` is their arg.
  double RunExpertCompute(const RoutedAssignment& routed,
                          double flops_per_token,
                          const std::vector<double>& per_gpu_earliest,
                          StepTiming* timing, const char* span_name,
                          int layer);

  /// The chunk depth one layer actually runs at: LayerWork::chunks when
  /// planned (> 0), else PipelineOptions::chunks, else serial.
  int EffectiveChunks(const LayerWork& work) const {
    if (work.chunks > 0) return work.chunks;
    return pipeline_.chunks > 1 ? pipeline_.chunks : 1;
  }

  /// The forward pass over `layers` — [shadow broadcasts] -> dispatch A2A
  /// -> expert compute at forward FLOPs -> combine A2A, per layer —
  /// shared verbatim by ExecuteStep and ExecuteForward so the two paths
  /// can never diverge in dispatch/broadcast semantics. Returns the new
  /// frontier. Each layer dispatches to the chunked variant when its
  /// effective depth is > 1; the serial body is the pre-pipelining code.
  double RunForwardLayers(const std::vector<LayerWork>& layers,
                          const std::vector<GpuId>& alive, double frontier,
                          StepTiming* timing);

  /// The chunked-overlap forward leg for one layer (PipelineOptions,
  /// DESIGN.md Section 11): all K dispatch chunks are posted from the
  /// layer's start (the NIC ports serialize them), each chunk's expert
  /// compute starts at that chunk's per-GPU dispatch finish, and each
  /// chunk's combine launches at that chunk's global compute finish — so
  /// chunk k+1's dispatch overlaps chunk k's compute and combines drain
  /// behind compute on the port streams. Broadcasts have already run.
  double RunForwardLayerChunked(const LayerWork& work, int chunks, int layer,
                                bool recirc, const std::vector<double>* scales,
                                double frontier, StepTiming* timing);

  /// The chunked backward MoE leg for one layer (DESIGN.md Section 12):
  /// same overlap shape as the forward leg at backward FLOPs — grad
  /// dispatch chunks posted at the leg start, per-chunk backward compute,
  /// per-chunk grad combine. Expert syncs are launched by the caller at
  /// the returned all-chunk compute finish (`*compute_all`): an expert's
  /// gradient is final only once every chunk's contribution is reduced.
  double RunBackwardLayerChunked(const LayerWork& work, int chunks, int layer,
                                 const std::vector<double>* scales,
                                 double frontier, StepTiming* timing,
                                 double* compute_all);

  /// Builds and launches one layer's expert-replica syncs (placement
  /// groups plus extra_sync_groups, ascending logical id) at `earliest`;
  /// returns max(sync_finish, each collective's finish) and accumulates
  /// sync_busy_seconds.
  double RunLayerSyncs(const LayerWork& work, double earliest,
                       NcclGroupCache* group_cache,
                       const std::vector<double>* scales, StepTiming* timing,
                       double sync_finish);

  /// RunExpertCompute for one chunk: tokens come from the per-chunk split
  /// of routed.expert_gpu_tokens instead of the full matrix.
  double RunExpertComputeChunk(const RoutedAssignment& routed,
                               double flops_per_token, int k, int K,
                               const std::vector<double>& per_gpu_earliest,
                               StepTiming* timing, const char* span_name,
                               int layer);

  ClusterState* cluster_;
  const HardwareProfile* profile_;
  ModelConfig model_;
  const ClusterHealth* health_ = nullptr;
  obs::Observability* obs_ = nullptr;
  PipelineOptions pipeline_;
  /// Per-call scratch owned by the executor (see DESIGN.md "Performance
  /// architecture"); mutable because DispatchBytes is logically const.
  mutable ByteMatrix dispatch_bytes_scratch_;
  /// Chunked-path scratch (DispatchBytesChunk / BandwidthScales).
  mutable ByteMatrix chunk_bytes_scratch_;
  mutable std::vector<double> port_scale_scratch_;
  /// Per-chunk dispatch results for the layer in flight (K is small).
  std::vector<CollectiveResult> chunk_dispatch_scratch_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_STEP_EXECUTOR_H_
