// ServeExecutor: latency-SLO serving with continuous batching (DESIGN.md
// Section 8). Requests arrive from a RequestSource; the executor admits
// them into microbatches under a deadline- or size-ordered discipline and
// a token cap, shapes each microbatch's routing from the next TraceSource
// step (rescaled to the admitted token count), and executes it through the
// system's forward-only ServeMicrobatch path. No optimizer step exists;
// the metrics are per-request latency against the SLO and goodput over
// the ARRIVED traffic.
//
// Batching discipline (pinned by serve_executor_test's property tests):
//  * WORK-CONSERVING UNDER BACKLOG — if requests are waiting the moment
//    the engine goes idle, the next batch launches immediately (their
//    batching window was the previous batch's execution).
//  * From an idle engine, the batcher waits exactly batch_window_seconds
//    past the first arrival before launching, collecting what lands.
//  * ADMISSION ORDER — "edf" (deadline, then arrival, then id) or "sjf"
//    (remaining tokens, then deadline, arrival, id): no waiting request is
//    ever passed over in favor of one that orders later.
//  * OVERSIZED REQUESTS CHUNK — a request larger than the remaining cap
//    never blocks the engine: when it heads an otherwise-empty batch it is
//    admitted as a cap-sized chunk and its remainder re-enters the queue
//    (same deadline and arrival), so it drains across consecutive batches
//    and completes when its last chunk does. Requests that fit are never
//    split.
//  * DEADLINE-AWARE SHEDDING (optional) — with `shed_unreachable` and a
//    latency estimator, a request popped for admission whose deadline
//    precedes even its best-case completion (the cost model's
//    contention-free forward estimate, chunked under the cap) is REJECTED
//    and counted, never executed and never silently dropped.
//  * TOKEN CONSERVATION — every arrived token is completed, shed, or still
//    queued at the end; a batch that loses tokens to a fault mid-execution
//    is retried wholesale (admitted chunks re-enter the queue), with the
//    retry latency charged to the original arrival.

#ifndef FLEXMOE_CORE_SERVE_EXECUTOR_H_
#define FLEXMOE_CORE_SERVE_EXECUTOR_H_

#include <functional>
#include <vector>

#include "core/system.h"
#include "gate/request_source.h"
#include "gate/trace_source.h"
#include "obs/observability.h"

namespace flexmoe {

/// \brief Serving-mode configuration (harness-level; see
/// ExperimentOptions::serving).
struct ServingOptions {
  /// Master switch: run the experiment as a serving workload.
  bool enabled = false;
  /// Mean request arrival rate before scenario modulation; <= 0 is invalid
  /// when enabled (benches derive it from the model's token throughput).
  double arrival_rate_rps = 0.0;
  int64_t tokens_per_request = 256;
  /// Per-request latency SLO.
  double slo_seconds = 0.0;
  /// Batching window from an idle engine; also the wall-clock length of
  /// one scenario step for arrival-rate modulation.
  double batch_window_seconds = 0.0;
  /// Token cap per microbatch; 0 derives model.tokens_per_gpu * num_gpus.
  int64_t max_batch_tokens = 0;
  /// Admission order: "edf" (earliest deadline first) or "sjf" (shortest
  /// remaining job first, deadline tie-break).
  std::string admission_policy = "edf";
  /// Deadline-aware load shedding: reject (and count) requests whose
  /// deadline is unreachable even at the cost model's best-case forward
  /// latency. Requires the executor's latency estimator.
  bool shed_unreachable = false;
  /// Per-request token sizes (gate/request_source.h); "fixed" preserves
  /// the legacy single-size stream byte-identically.
  SizeMixOptions size_mix;

  Status Validate() const;
};

/// \brief One batch's audit record (drives the property tests).
struct ServeBatchRecord {
  int64_t batch = 0;
  double engine_idle = 0.0;  ///< when the executor became free
  double launch = 0.0;
  double end = 0.0;
  int64_t tokens = 0;          ///< admitted tokens (not assignments)
  int num_requests = 0;        ///< admitted entries (chunks count once)
  int chunked = 0;             ///< admitted entries that are partial chunks
  int shed = 0;                ///< requests shed while forming this batch
  int backlog_at_idle = 0;     ///< requests waiting when the engine freed
  int left_waiting = 0;        ///< requests still queued after admission
  /// The heap-top waiting request's deadline (+inf when none) and the
  /// latest deadline among admitted ones (-inf when none). The heap top
  /// is the first waiting request in the ACTIVE policy's order, so under
  /// EDF this is the earliest waiting deadline and admission implies
  /// max_admitted_deadline <= min_waiting_deadline; under SJF the field
  /// is the smallest-remaining waiter's deadline and carries no ordering
  /// guarantee.
  double min_waiting_deadline = 0.0;
  double max_admitted_deadline = 0.0;
  /// Remaining-size twins (heap-top waiter's remaining, max admitted
  /// remaining at admission): under SJF admission implies
  /// max_admitted_remaining <= min_waiting_remaining; under EDF the
  /// waiting side carries no ordering guarantee.
  int64_t min_waiting_remaining = 0;
  int64_t max_admitted_remaining = 0;
  bool failed = false;         ///< fault mid-batch; batch was re-enqueued
};

/// \brief Aggregated serving outcome.
///
/// Accounting identities (pinned by serve_executor_test):
///   requests_arrived == requests_completed + requests_shed
///                       + requests_queued_at_end
///   tokens_arrived   == tokens_completed + tokens_shed
///                       + tokens_queued_at_end
/// SLO attainment is denominated over ARRIVED traffic whose outcome is
/// decided: completed requests, shed requests, and requests still queued
/// whose deadline already passed the horizon (a deeply backlogged run can
/// no longer hide its backlog behind the measurement window). Requests
/// queued with a still-feasible deadline are censored, not violations.
struct ServingReport {
  int64_t requests_arrived = 0;    ///< pulled from the source into the queue
  int64_t requests_completed = 0;
  int64_t requests_shed = 0;       ///< rejected: deadline unreachable
  int64_t requests_queued_at_end = 0;  ///< admitted to the queue, never ran
  /// Queued at the end with deadline <= the horizon: counted as
  /// violations (the survivor-bias fix).
  int64_t requests_queued_past_deadline = 0;
  /// Completed requests that missed their deadline.
  int64_t requests_completed_late = 0;
  int64_t tokens_arrived = 0;
  int64_t tokens_completed = 0;    ///< executed tokens (partial chunks count)
  int64_t tokens_shed = 0;         ///< unexecuted remainder of shed requests
  int64_t tokens_queued_at_end = 0;
  /// Full sizes of requests completed within their SLO (the goodput
  /// numerator; partial progress on late/shed requests does not count).
  int64_t tokens_completed_within_slo = 0;
  int64_t batches = 0;
  int64_t failed_batches = 0;      ///< fault retries (batches re-run)
  int64_t chunked_admissions = 0;  ///< cap-sized partial chunks admitted
  int64_t tokens_recirculated = 0; ///< static layouts' second-pass volume
  /// completed-late + shed + queued-past-deadline (see attainment note).
  int64_t slo_violations = 0;
  /// Fraction of decided arrived requests that met their deadline.
  double slo_attainment = 1.0;
  double mean_latency_seconds = 0.0;
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double mean_batch_seconds = 0.0;
  double mean_batch_tokens = 0.0;
  /// First launch to last completion.
  double span_seconds = 0.0;
  double served_tokens_per_sec = 0.0;
  /// Goodput: SLO-met tokens per second of span, over arrived traffic.
  double goodput_tokens_per_sec = 0.0;
};

/// \brief Deterministically rescales `src` to exactly `target_total`
/// token-assignments, preserving cell proportions (floor + largest
/// remainder, ties broken by cell index). Integer-exact: the result's
/// Total() == target_total, and cells that were zero stay zero.
/// Overflow-safe: the per-cell product count * target_total is taken in
/// 128-bit arithmetic, so billion-token traces rescale to billion-token
/// batches without wrapping.
Assignment ScaleAssignmentTo(const Assignment& src, int64_t target_total);

/// \brief Drives a MoESystem through a serving run.
class ServeExecutor {
 public:
  /// Best-case forward latency (seconds) of a microbatch of `tokens`
  /// admitted tokens; the shedding test. See
  /// EstimateForwardMicrobatchSeconds (core/cost_model.h) for the cost
  /// model's implementation the harness wires in.
  using LatencyEstimator = std::function<double(int64_t tokens)>;

  /// All pointers must outlive the executor. `max_batch_tokens` must be
  /// resolved (> 0) — Run() returns InvalidArgument otherwise (the
  /// constructor never aborts on bad sizing). `top_k` converts admitted
  /// tokens to assignments. `estimator` is required iff
  /// options.shed_unreachable.
  ServeExecutor(MoESystem* system, TraceSource* source,
                RequestSource* requests, const ServingOptions& options,
                int64_t max_batch_tokens, int top_k,
                LatencyEstimator estimator = nullptr);

  /// Executes exactly `num_batches` microbatches (one TraceSource step
  /// each) and aggregates the report.
  Result<ServingReport> Run(int num_batches);

  /// FNV-1a hash of the consumed source steps (chained from
  /// kTraceHashSeed) — the same stream identity the training loop reports.
  uint64_t trace_hash() const { return trace_hash_; }

  const std::vector<ServeBatchRecord>& batch_log() const { return log_; }

  /// Installs the per-run observability handle (nullable; also forwarded
  /// to the system under test). Batch formation and execution emit spans
  /// on the serving lane, backlog is sampled as a counter track, and
  /// per-request latencies feed a registry histogram.
  void set_observability(obs::Observability* obs) {
    obs_ = obs;
    system_->SetObservability(obs);
  }

 private:
  /// Best-case completion seconds for `remaining` tokens launched now:
  /// full-cap chunks plus the tail, each at the estimator's latency.
  double BestCaseServiceSeconds(int64_t remaining) const;

  MoESystem* system_;
  TraceSource* source_;
  RequestSource* requests_;
  ServingOptions options_;
  int64_t max_batch_tokens_;
  int top_k_;
  LatencyEstimator estimator_;
  /// estimator_(max_batch_tokens_), cached by Run() — the full-chunk term
  /// of every shed check, constant for the whole run.
  double cap_chunk_seconds_ = 0.0;
  uint64_t trace_hash_ = kTraceHashSeed;
  std::vector<ServeBatchRecord> log_;
  obs::Observability* obs_ = nullptr;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_SERVE_EXECUTOR_H_
