// ServeExecutor: latency-SLO serving with continuous batching (DESIGN.md
// Section 8). Requests arrive from a RequestSource; the executor admits
// them into microbatches under an earliest-deadline-first discipline and a
// token cap, shapes each microbatch's routing from the next TraceSource
// step (rescaled to the admitted token count), and executes it through the
// system's forward-only ServeMicrobatch path. No optimizer step exists;
// the metric is per-request latency against the SLO.
//
// Batching discipline (pinned by serve_executor_test's property tests):
//  * WORK-CONSERVING UNDER BACKLOG — if requests are waiting the moment
//    the engine goes idle, the next batch launches immediately (their
//    batching window was the previous batch's execution).
//  * From an idle engine, the batcher waits exactly batch_window_seconds
//    past the first arrival before launching, collecting what lands.
//  * DEADLINE ORDER — admission is EDF (deadline, then arrival, then id):
//    no waiting request is ever passed over in favor of one with a later
//    deadline.
//  * TOKEN CONSERVATION — every admitted request completes exactly once;
//    a batch that loses tokens to a fault mid-execution is retried
//    wholesale (admitted requests are never dropped), with the retry
//    latency charged to the original arrival.

#ifndef FLEXMOE_CORE_SERVE_EXECUTOR_H_
#define FLEXMOE_CORE_SERVE_EXECUTOR_H_

#include <vector>

#include "core/system.h"
#include "gate/request_source.h"
#include "gate/trace_source.h"

namespace flexmoe {

/// \brief Serving-mode configuration (harness-level; see
/// ExperimentOptions::serving).
struct ServingOptions {
  /// Master switch: run the experiment as a serving workload.
  bool enabled = false;
  /// Mean request arrival rate before scenario modulation; <= 0 is invalid
  /// when enabled (benches derive it from the model's token throughput).
  double arrival_rate_rps = 0.0;
  int64_t tokens_per_request = 256;
  /// Per-request latency SLO.
  double slo_seconds = 0.0;
  /// Batching window from an idle engine; also the wall-clock length of
  /// one scenario step for arrival-rate modulation.
  double batch_window_seconds = 0.0;
  /// Token cap per microbatch; 0 derives model.tokens_per_gpu * num_gpus.
  int64_t max_batch_tokens = 0;

  Status Validate() const;
};

/// \brief One batch's audit record (drives the property tests).
struct ServeBatchRecord {
  int64_t batch = 0;
  double engine_idle = 0.0;  ///< when the executor became free
  double launch = 0.0;
  double end = 0.0;
  int64_t tokens = 0;          ///< admitted tokens (not assignments)
  int num_requests = 0;
  int backlog_at_idle = 0;     ///< requests waiting when the engine freed
  int left_waiting = 0;        ///< requests still queued after admission
  /// Earliest deadline among requests left waiting (+inf when none) and
  /// latest deadline among admitted ones (-inf when none): EDF admission
  /// implies max_admitted_deadline <= min_waiting_deadline.
  double min_waiting_deadline = 0.0;
  double max_admitted_deadline = 0.0;
  bool failed = false;         ///< fault mid-batch; batch was re-enqueued
};

/// \brief Aggregated serving outcome.
struct ServingReport {
  int64_t requests_arrived = 0;    ///< pulled from the source into the queue
  int64_t requests_completed = 0;
  int64_t requests_queued_at_end = 0;  ///< admitted to the queue, never ran
  int64_t tokens_arrived = 0;
  int64_t tokens_completed = 0;
  int64_t batches = 0;
  int64_t failed_batches = 0;      ///< fault retries (batches re-run)
  int64_t tokens_recirculated = 0; ///< static layouts' second-pass volume
  int64_t slo_violations = 0;
  /// Fraction of completed requests that met their deadline.
  double slo_attainment = 1.0;
  double mean_latency_seconds = 0.0;
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double mean_batch_seconds = 0.0;
  double mean_batch_tokens = 0.0;
  /// First launch to last completion.
  double span_seconds = 0.0;
  double served_tokens_per_sec = 0.0;
};

/// \brief Deterministically rescales `src` to exactly `target_total`
/// token-assignments, preserving cell proportions (floor + largest
/// remainder, ties broken by cell index). Integer-exact: the result's
/// Total() == target_total, and cells that were zero stay zero.
Assignment ScaleAssignmentTo(const Assignment& src, int64_t target_total);

/// \brief Drives a MoESystem through a serving run.
class ServeExecutor {
 public:
  /// All pointers must outlive the executor. `max_batch_tokens` must be
  /// resolved (> 0); `top_k` converts admitted tokens to assignments.
  ServeExecutor(MoESystem* system, TraceSource* source,
                RequestSource* requests, const ServingOptions& options,
                int64_t max_batch_tokens, int top_k);

  /// Executes exactly `num_batches` microbatches (one TraceSource step
  /// each) and aggregates the report.
  Result<ServingReport> Run(int num_batches);

  /// FNV-1a hash of the consumed source steps (chained from
  /// kTraceHashSeed) — the same stream identity the training loop reports.
  uint64_t trace_hash() const { return trace_hash_; }

  const std::vector<ServeBatchRecord>& batch_log() const { return log_; }

 private:
  MoESystem* system_;
  TraceSource* source_;
  RequestSource* requests_;
  ServingOptions options_;
  int64_t max_batch_tokens_;
  int top_k_;
  uint64_t trace_hash_ = kTraceHashSeed;
  std::vector<ServeBatchRecord> log_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_SERVE_EXECUTOR_H_
