#include "core/router.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace flexmoe {

std::vector<int64_t> RoutedAssignment::PerGpuComputeTokens() const {
  std::vector<int64_t> loads(static_cast<size_t>(num_gpus), 0);
  for (int e = 0; e < num_experts; ++e) {
    const int64_t* row = expert_gpu_tokens.row(e);
    for (int g = 0; g < num_gpus; ++g) loads[static_cast<size_t>(g)] += row[g];
  }
  return loads;
}

std::vector<double> RoutedAssignment::PerGpuComputeLoads() const {
  const std::vector<int64_t> tokens = PerGpuComputeTokens();
  std::vector<double> loads(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    loads[i] = static_cast<double>(tokens[i]);
  }
  return loads;
}

int64_t RoutedAssignment::Total() const {
  int64_t total = 0;
  const int64_t* flat = expert_gpu_tokens.data();
  for (size_t i = 0; i < expert_gpu_tokens.element_count(); ++i) {
    total += flat[i];
  }
  return total;
}

int64_t RoutedAssignment::CrossGpuTokens() const {
  int64_t total = 0;
  for (int s = 0; s < num_gpus; ++s) {
    const int64_t* row = dispatch.row(s);
    for (int d = 0; d < num_gpus; ++d) {
      if (s != d) total += row[d];
    }
  }
  return total;
}

namespace {

/// Reusable per-call scratch for the per-expert routing core. thread_local
/// so concurrent grid cells never share it (see DESIGN.md "Performance
/// architecture" for the scratch ownership rules).
struct RouteScratch {
  std::vector<int64_t> quota;
  std::vector<int64_t> avail;
  std::vector<int64_t> spill;
  std::vector<int64_t> take;
  std::vector<std::pair<double, GpuId>> remainders;

  void Resize(int num_gpus) {
    quota.resize(static_cast<size_t>(num_gpus));
    avail.resize(static_cast<size_t>(num_gpus));
    spill.resize(static_cast<size_t>(num_gpus));
    take.resize(static_cast<size_t>(num_gpus));
    remainders.reserve(static_cast<size_t>(num_gpus));
  }
};

RouteScratch& Scratch() {
  static thread_local RouteScratch scratch;
  return scratch;
}

/// Routes one expert (Alg. 3 applied to expert `e` alone) and accumulates
/// its contribution into `out` with the given sign. The token placement
/// (`take` values) is a pure function of the expert's assignment row and
/// placement row, so +1 followed by -1 cancels exactly.
void RouteExpert(const Assignment& assignment, const Placement& placement,
                 int e, int sign, RoutedAssignment* out) {
  const int num_gpus = assignment.num_gpus();
  const int64_t total = assignment.ExpertTotal(e);
  if (total == 0) return;
  const int n_e = placement.VExperts(e);
  FLEXMOE_CHECK_MSG(n_e >= 1, "expert with zero vExperts");
  // cap_e = ceil(I_e / n_e): even partitioning across vExperts.
  const int64_t cap = (total + n_e - 1) / n_e;

  RouteScratch& s = Scratch();
  s.Resize(num_gpus);

  // Locality-first claim (Alg. 3 line 5).
  int64_t* expert_row = out->expert_gpu_tokens.row(e);
  const int64_t* assigned = assignment.row(e);
  const int* replicas = placement.CountsRow(e);
  int64_t spill_total = 0;
  for (GpuId g = 0; g < num_gpus; ++g) {
    s.quota[static_cast<size_t>(g)] =
        cap * static_cast<int64_t>(replicas[g]);
    const int64_t local =
        std::min(s.quota[static_cast<size_t>(g)], assigned[g]);
    expert_row[g] += sign * local;
    out->dispatch(g, g) += sign * local;
    s.avail[static_cast<size_t>(g)] = s.quota[static_cast<size_t>(g)] - local;
    s.spill[static_cast<size_t>(g)] = assigned[g] - local;
    spill_total += assigned[g] - local;
  }
  if (spill_total == 0) return;

  // Proportional spill (Alg. 3 lines 8-10) with largest-remainder
  // rounding, then a greedy pass for residual integer slack. The total
  // available capacity is maintained incrementally (every spilled token
  // lands somewhere, so it shrinks by exactly `sp` per source).
  int64_t total_avail = 0;
  for (GpuId g = 0; g < num_gpus; ++g) {
    total_avail += s.avail[static_cast<size_t>(g)];
  }
  for (GpuId src = 0; src < num_gpus; ++src) {
    const int64_t sp = s.spill[static_cast<size_t>(src)];
    if (sp <= 0) continue;
    FLEXMOE_CHECK_MSG(total_avail >= sp, "router capacity accounting broken");

    // Proportional allocation.
    s.remainders.clear();
    int64_t allocated = 0;
    std::fill(s.take.begin(), s.take.end(), 0);
    for (GpuId dst = 0; dst < num_gpus; ++dst) {
      const int64_t a = s.avail[static_cast<size_t>(dst)];
      if (a <= 0) continue;
      const double exact = static_cast<double>(sp) *
                           static_cast<double>(a) /
                           static_cast<double>(total_avail);
      const int64_t base =
          std::min(a, static_cast<int64_t>(std::floor(exact)));
      s.take[static_cast<size_t>(dst)] = base;
      allocated += base;
      s.remainders.push_back({exact - std::floor(exact), dst});
    }
    std::sort(s.remainders.begin(), s.remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    int64_t leftover = sp - allocated;
    for (const auto& [frac, dst] : s.remainders) {
      if (leftover <= 0) break;
      if (s.take[static_cast<size_t>(dst)] <
          s.avail[static_cast<size_t>(dst)]) {
        ++s.take[static_cast<size_t>(dst)];
        --leftover;
      }
    }
    // Greedy residue (rounding can leave slack when many dsts saturate).
    for (GpuId dst = 0; dst < num_gpus && leftover > 0; ++dst) {
      const int64_t room =
          s.avail[static_cast<size_t>(dst)] - s.take[static_cast<size_t>(dst)];
      const int64_t extra = std::min(room, leftover);
      s.take[static_cast<size_t>(dst)] += extra;
      leftover -= extra;
    }
    FLEXMOE_CHECK_MSG(leftover == 0, "router failed to place spill");

    int64_t* dispatch_row = out->dispatch.row(src);
    for (GpuId dst = 0; dst < num_gpus; ++dst) {
      const int64_t t = s.take[static_cast<size_t>(dst)];
      if (t <= 0) continue;
      expert_row[dst] += sign * t;
      dispatch_row[dst] += sign * t;
      s.avail[static_cast<size_t>(dst)] -= t;
    }
    total_avail -= sp;
  }
}

}  // namespace

RoutedAssignment FlexibleRouter::Route(const Assignment& assignment,
                                       const Placement& placement) {
  FLEXMOE_CHECK(assignment.num_experts() == placement.num_experts());
  FLEXMOE_CHECK(assignment.num_gpus() == placement.num_gpus());
  const int num_experts = assignment.num_experts();
  const int num_gpus = assignment.num_gpus();

  RoutedAssignment out;
  out.num_experts = num_experts;
  out.num_gpus = num_gpus;
  out.expert_gpu_tokens.assign(num_experts, num_gpus, 0);
  out.dispatch.assign(num_gpus, num_gpus, 0);

  for (int e = 0; e < num_experts; ++e) {
    RouteExpert(assignment, placement, e, +1, &out);
  }
  return out;
}

void FlexibleRouter::AccumulateExpert(const Assignment& assignment,
                                      const Placement& placement, int expert,
                                      int sign, RoutedAssignment* out) {
  FLEXMOE_CHECK(out != nullptr);
  FLEXMOE_CHECK(assignment.num_experts() == placement.num_experts());
  FLEXMOE_CHECK(assignment.num_gpus() == placement.num_gpus());
  FLEXMOE_CHECK(expert >= 0 && expert < assignment.num_experts());
  FLEXMOE_CHECK(sign == 1 || sign == -1);
  RouteExpert(assignment, placement, expert, sign, out);
}

}  // namespace flexmoe
