#include "core/router.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace flexmoe {

std::vector<int64_t> RoutedAssignment::PerGpuComputeTokens() const {
  std::vector<int64_t> loads(static_cast<size_t>(num_gpus), 0);
  for (int e = 0; e < num_experts; ++e) {
    for (int g = 0; g < num_gpus; ++g) {
      loads[static_cast<size_t>(g)] +=
          expert_gpu_tokens[static_cast<size_t>(e)][static_cast<size_t>(g)];
    }
  }
  return loads;
}

std::vector<double> RoutedAssignment::PerGpuComputeLoads() const {
  const std::vector<int64_t> tokens = PerGpuComputeTokens();
  std::vector<double> loads(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    loads[i] = static_cast<double>(tokens[i]);
  }
  return loads;
}

int64_t RoutedAssignment::Total() const {
  int64_t total = 0;
  for (const auto& row : expert_gpu_tokens) {
    for (int64_t v : row) total += v;
  }
  return total;
}

int64_t RoutedAssignment::CrossGpuTokens() const {
  int64_t total = 0;
  for (int s = 0; s < num_gpus; ++s) {
    for (int d = 0; d < num_gpus; ++d) {
      if (s != d) total += dispatch[static_cast<size_t>(s)][static_cast<size_t>(d)];
    }
  }
  return total;
}

RoutedAssignment FlexibleRouter::Route(const Assignment& assignment,
                                       const Placement& placement) {
  FLEXMOE_CHECK(assignment.num_experts() == placement.num_experts());
  FLEXMOE_CHECK(assignment.num_gpus() == placement.num_gpus());
  const int num_experts = assignment.num_experts();
  const int num_gpus = assignment.num_gpus();

  RoutedAssignment out;
  out.num_experts = num_experts;
  out.num_gpus = num_gpus;
  out.expert_gpu_tokens.assign(
      static_cast<size_t>(num_experts),
      std::vector<int64_t>(static_cast<size_t>(num_gpus), 0));
  out.dispatch.assign(static_cast<size_t>(num_gpus),
                      std::vector<int64_t>(static_cast<size_t>(num_gpus), 0));

  std::vector<int64_t> quota(static_cast<size_t>(num_gpus));
  std::vector<int64_t> avail(static_cast<size_t>(num_gpus));
  std::vector<int64_t> spill(static_cast<size_t>(num_gpus));

  for (int e = 0; e < num_experts; ++e) {
    const int64_t total = assignment.ExpertTotal(e);
    if (total == 0) continue;
    const int n_e = placement.VExperts(e);
    FLEXMOE_CHECK_MSG(n_e >= 1, "expert with zero vExperts");
    // cap_e = ceil(I_e / n_e): even partitioning across vExperts.
    const int64_t cap = (total + n_e - 1) / n_e;

    // Locality-first claim (Alg. 3 line 5).
    for (GpuId g = 0; g < num_gpus; ++g) {
      quota[static_cast<size_t>(g)] =
          cap * static_cast<int64_t>(placement.VExpertsOn(e, g));
      const int64_t local =
          std::min(quota[static_cast<size_t>(g)], assignment.at(e, g));
      out.expert_gpu_tokens[static_cast<size_t>(e)][static_cast<size_t>(g)] +=
          local;
      out.dispatch[static_cast<size_t>(g)][static_cast<size_t>(g)] += local;
      avail[static_cast<size_t>(g)] = quota[static_cast<size_t>(g)] - local;
      spill[static_cast<size_t>(g)] = assignment.at(e, g) - local;
    }

    // Proportional spill (Alg. 3 lines 8-10) with largest-remainder
    // rounding, then a greedy pass for residual integer slack.
    for (GpuId src = 0; src < num_gpus; ++src) {
      int64_t s = spill[static_cast<size_t>(src)];
      if (s <= 0) continue;
      int64_t total_avail = 0;
      for (GpuId g = 0; g < num_gpus; ++g) {
        total_avail += avail[static_cast<size_t>(g)];
      }
      FLEXMOE_CHECK_MSG(total_avail >= s, "router capacity accounting broken");

      // Proportional allocation.
      std::vector<std::pair<double, GpuId>> remainders;
      int64_t allocated = 0;
      std::vector<int64_t> take(static_cast<size_t>(num_gpus), 0);
      for (GpuId dst = 0; dst < num_gpus; ++dst) {
        const int64_t a = avail[static_cast<size_t>(dst)];
        if (a <= 0) continue;
        const double exact = static_cast<double>(s) *
                             static_cast<double>(a) /
                             static_cast<double>(total_avail);
        const int64_t base =
            std::min(a, static_cast<int64_t>(std::floor(exact)));
        take[static_cast<size_t>(dst)] = base;
        allocated += base;
        remainders.push_back({exact - std::floor(exact), dst});
      }
      std::sort(remainders.begin(), remainders.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      int64_t leftover = s - allocated;
      for (const auto& [frac, dst] : remainders) {
        if (leftover <= 0) break;
        if (take[static_cast<size_t>(dst)] < avail[static_cast<size_t>(dst)]) {
          ++take[static_cast<size_t>(dst)];
          --leftover;
        }
      }
      // Greedy residue (rounding can leave slack when many dsts saturate).
      for (GpuId dst = 0; dst < num_gpus && leftover > 0; ++dst) {
        const int64_t room =
            avail[static_cast<size_t>(dst)] - take[static_cast<size_t>(dst)];
        const int64_t extra = std::min(room, leftover);
        take[static_cast<size_t>(dst)] += extra;
        leftover -= extra;
      }
      FLEXMOE_CHECK_MSG(leftover == 0, "router failed to place spill");

      for (GpuId dst = 0; dst < num_gpus; ++dst) {
        const int64_t t = take[static_cast<size_t>(dst)];
        if (t <= 0) continue;
        out.expert_gpu_tokens[static_cast<size_t>(e)][static_cast<size_t>(dst)] +=
            t;
        out.dispatch[static_cast<size_t>(src)][static_cast<size_t>(dst)] += t;
        avail[static_cast<size_t>(dst)] -= t;
      }
    }
  }
  return out;
}

}  // namespace flexmoe
