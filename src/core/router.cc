#include "core/router.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace flexmoe {

void RoutedAssignment::EnableNodeAggregation(const Topology& topo) {
  FLEXMOE_CHECK(num_gpus == 0 || num_gpus == topo.num_gpus());
  node_of.resize(static_cast<size_t>(topo.num_gpus()));
  for (GpuId g = 0; g < topo.num_gpus(); ++g) {
    node_of[static_cast<size_t>(g)] = topo.NodeOf(g);
  }
  num_nodes = topo.num_nodes();
  node_dispatch_to.assign(topo.num_gpus(), num_nodes, 0);
  // Rebuild from an already-populated dispatch matrix so enabling after
  // routing is equivalent to enabling before.
  for (GpuId dst = 0; dst < num_gpus; ++dst) {
    const int64_t* row = dispatch_to.row(dst);
    int64_t* agg = node_dispatch_to.row(dst);
    for (GpuId src = 0; src < num_gpus; ++src) {
      agg[node_of[static_cast<size_t>(src)]] += row[src];
    }
  }
}

void RoutedAssignment::DisableNodeAggregation() {
  node_of.clear();
  num_nodes = 0;
  node_dispatch_to.assign(0, 0, 0);
}

std::vector<int64_t> RoutedAssignment::PerGpuComputeTokens() const {
  std::vector<int64_t> loads;
  PerGpuComputeTokensInto(&loads);
  return loads;
}

void RoutedAssignment::PerGpuComputeTokensInto(
    std::vector<int64_t>* out) const {
  out->assign(static_cast<size_t>(num_gpus), 0);
  for (int e = 0; e < num_experts; ++e) {
    const int64_t* row = expert_gpu_tokens.row(e);
    for (int g = 0; g < num_gpus; ++g) {
      (*out)[static_cast<size_t>(g)] += row[g];
    }
  }
}

std::vector<double> RoutedAssignment::PerGpuComputeLoads() const {
  const std::vector<int64_t> tokens = PerGpuComputeTokens();
  std::vector<double> loads(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    loads[i] = static_cast<double>(tokens[i]);
  }
  return loads;
}

int64_t RoutedAssignment::Total() const {
  int64_t total = 0;
  const int64_t* flat = expert_gpu_tokens.data();
  for (size_t i = 0; i < expert_gpu_tokens.element_count(); ++i) {
    total += flat[i];
  }
  return total;
}

int64_t RoutedAssignment::CrossGpuTokens() const {
  int64_t total = 0;
  for (int d = 0; d < num_gpus; ++d) {
    const int64_t* row = dispatch_to.row(d);
    for (int s = 0; s < num_gpus; ++s) {
      if (s != d) total += row[s];
    }
  }
  return total;
}

namespace {

/// Reusable per-call scratch for the per-expert routing core. thread_local
/// so concurrent grid cells never share it (see DESIGN.md "Performance
/// architecture" for the scratch ownership rules).
struct RouteScratch {
  std::vector<int64_t> quota;
  std::vector<int64_t> avail;
  std::vector<int64_t> spill;
  std::vector<int64_t> take;
  std::vector<GpuId> dsts;
  std::vector<std::pair<double, GpuId>> remainders;

  void Resize(int num_gpus) {
    quota.resize(static_cast<size_t>(num_gpus));
    avail.resize(static_cast<size_t>(num_gpus));
    spill.resize(static_cast<size_t>(num_gpus));
    take.resize(static_cast<size_t>(num_gpus));
    dsts.clear();
    dsts.reserve(static_cast<size_t>(num_gpus));
    remainders.reserve(static_cast<size_t>(num_gpus));
  }
};

RouteScratch& Scratch() {
  static thread_local RouteScratch scratch;
  return scratch;
}

/// Routes one expert (Alg. 3 applied to expert `e` alone) and accumulates
/// its contribution into `out` with the given sign. The token placement
/// (`take` values) is a pure function of the expert's assignment row and
/// placement row, so +1 followed by -1 cancels exactly.
void RouteExpert(const Assignment& assignment, const Placement& placement,
                 int e, int sign, RoutedAssignment* out) {
  const int num_gpus = assignment.num_gpus();
  const int64_t total = assignment.ExpertTotal(e);
  if (total == 0) return;
  const int n_e = placement.VExperts(e);
  FLEXMOE_CHECK_MSG(n_e >= 1, "expert with zero vExperts");
  // cap_e = ceil(I_e / n_e): even partitioning across vExperts.
  const int64_t cap = (total + n_e - 1) / n_e;

  RouteScratch& s = Scratch();
  s.Resize(num_gpus);

  // Per-node aggregation rides along when enabled (integer adds only, so
  // it cancels under +1/-1 exactly like the dispatch matrix itself).
  const bool aggregate = !out->node_of.empty();

  // Locality-first claim (Alg. 3 line 5).
  int64_t* expert_row = out->expert_gpu_tokens.row(e);
  const int64_t* assigned = assignment.row(e);
  const int* replicas = placement.CountsRow(e);
  int64_t spill_total = 0;
  s.dsts.clear();
  for (GpuId g = 0; g < num_gpus; ++g) {
    s.quota[static_cast<size_t>(g)] =
        cap * static_cast<int64_t>(replicas[g]);
    const int64_t local =
        std::min(s.quota[static_cast<size_t>(g)], assigned[g]);
    // Guarded: only hosts can claim locally (quota is 0 elsewhere), and the
    // unguarded += 0 would touch one fresh cacheline per GPU (the dispatch
    // diagonal) — measurably the whole routing cost at G = 512.
    if (local != 0) {
      expert_row[g] += sign * local;
      out->dispatch_to(g, g) += sign * local;
      if (aggregate) {
        out->node_dispatch_to(g, out->node_of[static_cast<size_t>(g)]) +=
            sign * local;
      }
    }
    s.avail[static_cast<size_t>(g)] = s.quota[static_cast<size_t>(g)] - local;
    s.spill[static_cast<size_t>(g)] = assigned[g] - local;
    spill_total += assigned[g] - local;
    // Spill can only land where capacity remains; only host GPUs have any
    // (quota > 0 requires a replica). Collecting them here (ascending, the
    // canonical order) lets every per-source loop below run over the
    // expert's hosts instead of all G — the difference between O(G^2) and
    // O(G + spill_sources * hosts) per expert at large EP.
    if (s.avail[static_cast<size_t>(g)] > 0) s.dsts.push_back(g);
  }
  if (spill_total == 0) return;

  // Proportional spill (Alg. 3 lines 8-10) with largest-remainder
  // rounding, then a greedy pass for residual integer slack. The total
  // available capacity is maintained incrementally (every spilled token
  // lands somewhere, so it shrinks by exactly `sp` per source).
  int64_t total_avail = 0;
  for (GpuId g = 0; g < num_gpus; ++g) {
    total_avail += s.avail[static_cast<size_t>(g)];
  }
  // Single-destination fast path: the common large-EP shape (an expert's
  // vExperts all on its home GPU) leaves exactly one GPU with spare
  // capacity, so the proportional/remainder/residue machinery below acts
  // on one element. This inlines that one-element execution — the same
  // arithmetic in the same order, so the resulting takes are bit-identical
  // to the general path — at a few scalar ops per spilling source.
  if (s.dsts.size() == 1) {
    const GpuId dst = s.dsts.front();
    // Local avail copy (written back after the loop): the matrix writes
    // below could alias any int64_t in the compiler's view, which would
    // force a reload/spill of the counter every iteration.
    int64_t avail_dst = s.avail[static_cast<size_t>(dst)];
    // Destination-major rows: the whole loop writes two contiguous rows.
    int64_t* dispatch_row = out->dispatch_to.row(dst);
    int64_t* agg_row =
        aggregate ? out->node_dispatch_to.row(dst) : nullptr;
    for (GpuId src = 0; src < num_gpus; ++src) {
      const int64_t sp = s.spill[static_cast<size_t>(src)];
      if (sp <= 0) continue;
      FLEXMOE_CHECK_MSG(total_avail >= sp,
                        "router capacity accounting broken");
      const int64_t a = avail_dst;
      int64_t take;
      if (sp < (int64_t{1} << 50)) {
        // a == total_avail >= sp, so the general path computes
        // floor(fl(fl(sp*a)/a)) with two roundings of combined relative
        // error < 2^-51; for sp < 2^50 the absolute error is < 1/2, so the
        // floor lands on sp or sp-1, and the largest-remainder step (take
        // < a holds because a >= sp > sp-1) bumps sp-1 back to sp. The
        // result is provably take == sp — the divide can be skipped.
        take = sp;
      } else {
        // Out-of-range token counts: run the general path's arithmetic in
        // its exact form so the results stay bit-identical regardless.
        const double exact = static_cast<double>(sp) *
                             static_cast<double>(a) /
                             static_cast<double>(total_avail);
        take = std::min(a, static_cast<int64_t>(std::floor(exact)));
        int64_t leftover = sp - take;
        if (leftover > 0 && take < a) {  // largest-remainder step
          ++take;
          --leftover;
        }
        const int64_t extra = std::min(a - take, leftover);  // greedy residue
        take += extra;
        leftover -= extra;
        FLEXMOE_CHECK_MSG(leftover == 0, "router failed to place spill");
      }
      if (take > 0) {
        expert_row[dst] += sign * take;
        dispatch_row[src] += sign * take;
        if (agg_row != nullptr) {
          agg_row[out->node_of[static_cast<size_t>(src)]] += sign * take;
        }
        avail_dst -= take;
      }
      total_avail -= sp;
    }
    s.avail[static_cast<size_t>(dst)] = avail_dst;
    return;
  }

  // Two-destination fast path: the Policy Maker's expand candidates give
  // the hot expert exactly one extra host, so every candidate evaluation
  // routes it over two destinations. This transcribes the general loop's
  // per-source execution for |dsts| == 2 into scalars — the same FP ops in
  // the same order (proportional floors, largest-remainder in (frac desc,
  // id asc) order, greedy residue ascending) — so the takes are
  // bit-identical, without the remainder-vector and take-array traffic.
  if (s.dsts.size() == 2) {
    const GpuId d1 = s.dsts[0], d2 = s.dsts[1];  // ascending
    // Local avail copies (written back after the loop) — see above.
    int64_t av1 = s.avail[static_cast<size_t>(d1)];
    int64_t av2 = s.avail[static_cast<size_t>(d2)];
    int64_t* row1 = out->dispatch_to.row(d1);
    int64_t* row2 = out->dispatch_to.row(d2);
    int64_t* agg1 = aggregate ? out->node_dispatch_to.row(d1) : nullptr;
    int64_t* agg2 = aggregate ? out->node_dispatch_to.row(d2) : nullptr;
    for (GpuId src = 0; src < num_gpus; ++src) {
      const int64_t sp = s.spill[static_cast<size_t>(src)];
      if (sp <= 0) continue;
      FLEXMOE_CHECK_MSG(total_avail >= sp,
                        "router capacity accounting broken");
      const int64_t a1 = av1, a2 = av2;
      if (a1 <= 0 || a2 <= 0) {
        // One destination saturated: identical to the single-destination
        // path (the live avail == total_avail), including its no-divide
        // shortcut for in-range token counts.
        const bool live1 = a1 > 0;
        const int64_t a = live1 ? a1 : a2;
        int64_t take;
        if (sp < (int64_t{1} << 50)) {
          take = sp;  // provably equal to the general arithmetic (see above)
        } else {
          const double exact = static_cast<double>(sp) *
                               static_cast<double>(a) /
                               static_cast<double>(total_avail);
          take = std::min(a, static_cast<int64_t>(std::floor(exact)));
          int64_t leftover = sp - take;
          if (leftover > 0 && take < a) {
            ++take;
            --leftover;
          }
          const int64_t extra = std::min(a - take, leftover);
          take += extra;
          leftover -= extra;
          FLEXMOE_CHECK_MSG(leftover == 0, "router failed to place spill");
        }
        if (take > 0) {
          const GpuId dst = live1 ? d1 : d2;
          expert_row[dst] += sign * take;
          (live1 ? row1 : row2)[src] += sign * take;
          if (aggregate) {
            (live1 ? agg1 : agg2)[out->node_of[static_cast<size_t>(src)]] +=
                sign * take;
          }
          (live1 ? av1 : av2) -= take;
        }
        total_avail -= sp;
        continue;
      }
      // Proportional floors for both destinations (the general loop's
      // push order is d1 then d2; ids ascending breaks frac ties, so the
      // remainder order is d1-first iff f1 >= f2).
      const double exact1 = static_cast<double>(sp) *
                            static_cast<double>(a1) /
                            static_cast<double>(total_avail);
      const double fl1 = std::floor(exact1);
      int64_t t1 = std::min(a1, static_cast<int64_t>(fl1));
      const double f1 = exact1 - fl1;
      const double exact2 = static_cast<double>(sp) *
                            static_cast<double>(a2) /
                            static_cast<double>(total_avail);
      const double fl2 = std::floor(exact2);
      int64_t t2 = std::min(a2, static_cast<int64_t>(fl2));
      const double f2 = exact2 - fl2;
      int64_t leftover = sp - t1 - t2;
      if (leftover > 0) {
        if (f1 >= f2) {  // largest-remainder order: d1, d2
          if (t1 < a1) { ++t1; --leftover; }
          if (leftover > 0 && t2 < a2) { ++t2; --leftover; }
        } else {  // d2, d1
          if (t2 < a2) { ++t2; --leftover; }
          if (leftover > 0 && t1 < a1) { ++t1; --leftover; }
        }
        if (leftover > 0) {  // greedy residue, ascending dst order
          const int64_t e1 = std::min(a1 - t1, leftover);
          t1 += e1;
          leftover -= e1;
          const int64_t e2 = std::min(a2 - t2, leftover);
          t2 += e2;
          leftover -= e2;
        }
        FLEXMOE_CHECK_MSG(leftover == 0, "router failed to place spill");
      }
      if (t1 > 0) {
        expert_row[d1] += sign * t1;
        row1[src] += sign * t1;
        if (agg1 != nullptr) {
          agg1[out->node_of[static_cast<size_t>(src)]] += sign * t1;
        }
        av1 -= t1;
      }
      if (t2 > 0) {
        expert_row[d2] += sign * t2;
        row2[src] += sign * t2;
        if (agg2 != nullptr) {
          agg2[out->node_of[static_cast<size_t>(src)]] += sign * t2;
        }
        av2 -= t2;
      }
      total_avail -= sp;
    }
    s.avail[static_cast<size_t>(d1)] = av1;
    s.avail[static_cast<size_t>(d2)] = av2;
    return;
  }

  for (GpuId src = 0; src < num_gpus; ++src) {
    const int64_t sp = s.spill[static_cast<size_t>(src)];
    if (sp <= 0) continue;
    FLEXMOE_CHECK_MSG(total_avail >= sp, "router capacity accounting broken");

    // Proportional allocation over the expert's hosts (`s.dsts` is exactly
    // the ascending-id set the full-G scan would visit: every other GPU has
    // zero capacity, which the old scan skipped).
    s.remainders.clear();
    int64_t allocated = 0;
    for (const GpuId dst : s.dsts) {
      s.take[static_cast<size_t>(dst)] = 0;
      const int64_t a = s.avail[static_cast<size_t>(dst)];
      if (a <= 0) continue;
      const double exact = static_cast<double>(sp) *
                           static_cast<double>(a) /
                           static_cast<double>(total_avail);
      const int64_t base =
          std::min(a, static_cast<int64_t>(std::floor(exact)));
      s.take[static_cast<size_t>(dst)] = base;
      allocated += base;
      s.remainders.push_back({exact - std::floor(exact), dst});
    }
    // The comparator is a strict total order (destinations are unique), so
    // the sorted permutation is unique and any sorting algorithm produces
    // it; insertion sort skips std::sort's dispatch overhead at the tiny
    // sizes (|hosts|) seen here.
    const auto remainder_less = [](const std::pair<double, GpuId>& a,
                                   const std::pair<double, GpuId>& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    };
    for (size_t i = 1; i < s.remainders.size(); ++i) {
      const std::pair<double, GpuId> key = s.remainders[i];
      size_t j = i;
      for (; j > 0 && remainder_less(key, s.remainders[j - 1]); --j) {
        s.remainders[j] = s.remainders[j - 1];
      }
      s.remainders[j] = key;
    }
    int64_t leftover = sp - allocated;
    for (const auto& [frac, dst] : s.remainders) {
      if (leftover <= 0) break;
      if (s.take[static_cast<size_t>(dst)] <
          s.avail[static_cast<size_t>(dst)]) {
        ++s.take[static_cast<size_t>(dst)];
        --leftover;
      }
    }
    // Greedy residue (rounding can leave slack when many dsts saturate).
    for (const GpuId dst : s.dsts) {
      if (leftover <= 0) break;
      const int64_t room =
          s.avail[static_cast<size_t>(dst)] - s.take[static_cast<size_t>(dst)];
      const int64_t extra = std::min(room, leftover);
      s.take[static_cast<size_t>(dst)] += extra;
      leftover -= extra;
    }
    FLEXMOE_CHECK_MSG(leftover == 0, "router failed to place spill");

    // Destination-major writes: each dst's cell for this src sits at
    // column `src` of the dst row, so consecutive sources touch
    // consecutive bytes of the same few (|hosts|) rows.
    const int src_node =
        aggregate ? out->node_of[static_cast<size_t>(src)] : 0;
    for (const GpuId dst : s.dsts) {
      const int64_t t = s.take[static_cast<size_t>(dst)];
      if (t <= 0) continue;
      expert_row[dst] += sign * t;
      out->dispatch_to(dst, src) += sign * t;
      if (aggregate) out->node_dispatch_to(dst, src_node) += sign * t;
      s.avail[static_cast<size_t>(dst)] -= t;
    }
    total_avail -= sp;
  }
}

}  // namespace

RoutedAssignment FlexibleRouter::Route(const Assignment& assignment,
                                       const Placement& placement) {
  RoutedAssignment out;
  RouteInto(assignment, placement, &out);
  return out;
}

void FlexibleRouter::RouteInto(const Assignment& assignment,
                               const Placement& placement,
                               RoutedAssignment* out) {
  FLEXMOE_CHECK(out != nullptr);
  FLEXMOE_CHECK(assignment.num_experts() == placement.num_experts());
  FLEXMOE_CHECK(assignment.num_gpus() == placement.num_gpus());
  const int num_experts = assignment.num_experts();
  const int num_gpus = assignment.num_gpus();

  out->num_experts = num_experts;
  out->num_gpus = num_gpus;
  out->expert_gpu_tokens.assign(num_experts, num_gpus, 0);
  out->dispatch_to.assign(num_gpus, num_gpus, 0);
  if (!out->node_of.empty()) {
    FLEXMOE_CHECK(static_cast<int>(out->node_of.size()) == num_gpus);
    out->node_dispatch_to.assign(num_gpus, out->num_nodes, 0);
  }

  for (int e = 0; e < num_experts; ++e) {
    RouteExpert(assignment, placement, e, +1, out);
  }
}

void FlexibleRouter::AccumulateExpert(const Assignment& assignment,
                                      const Placement& placement, int expert,
                                      int sign, RoutedAssignment* out) {
  FLEXMOE_CHECK(out != nullptr);
  FLEXMOE_CHECK(assignment.num_experts() == placement.num_experts());
  FLEXMOE_CHECK(assignment.num_gpus() == placement.num_gpus());
  FLEXMOE_CHECK(expert >= 0 && expert < assignment.num_experts());
  FLEXMOE_CHECK(sign == 1 || sign == -1);
  RouteExpert(assignment, placement, expert, sign, out);
}

}  // namespace flexmoe
