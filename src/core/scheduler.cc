#include "core/scheduler.h"

#include "core/balance.h"

namespace flexmoe {

const char* TriggerMetricName(TriggerMetric m) {
  switch (m) {
    case TriggerMetric::kMaxRatio:
      return "Max";
    case TriggerMetric::kVariance:
      return "Variance";
  }
  return "?";
}

const char* TriggerPolicyName(TriggerPolicy p) {
  switch (p) {
    case TriggerPolicy::kDynamic:
      return "Dynamic";
    case TriggerPolicy::kStaticInterval:
      return "StaticInterval";
  }
  return "?";
}

Status SchedulerOptions::Validate() const {
  if (threshold < 1.0) {
    return Status::InvalidArgument("balance-ratio threshold must be >= 1");
  }
  if (variance_threshold < 0.0) {
    return Status::InvalidArgument("variance_threshold must be >= 0");
  }
  if (static_interval_steps <= 0) {
    return Status::InvalidArgument("static_interval_steps must be > 0");
  }
  if (max_plan_iterations <= 0) {
    return Status::InvalidArgument("max_plan_iterations must be > 0");
  }
  if (max_migrations < 0) {
    return Status::InvalidArgument("max_migrations must be >= 0");
  }
  if (max_evacuations < 0) {
    return Status::InvalidArgument("max_evacuations must be >= 0");
  }
  return Status::OK();
}

namespace {

const CostModel* CostModelOf(const PolicyMaker* policy_maker) {
  FLEXMOE_CHECK(policy_maker != nullptr);
  return policy_maker->cost_model();
}

}  // namespace

Scheduler::Scheduler(const PolicyMaker* policy_maker,
                     const SchedulerOptions& options)
    : policy_maker_(policy_maker),
      options_(options),
      plan_state_(CostModelOf(policy_maker),
                  !policy_maker->options().serve_objective) {
  FLEXMOE_CHECK_OK(options.Validate());
}

double Scheduler::MetricFromTokens(
    const std::vector<int64_t>& tokens) const {
  loads_scratch_.resize(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    loads_scratch_[i] = static_cast<double>(tokens[i]);
  }
  switch (options_.metric) {
    case TriggerMetric::kMaxRatio:
      return BalanceRatio(loads_scratch_);
    case TriggerMetric::kVariance:
      return BalanceVariance(loads_scratch_);
  }
  return 0.0;
}

double Scheduler::MetricOf(const Assignment& assignment,
                           const Placement& placement) const {
  FlexibleRouter::RouteInto(assignment, placement, &metric_scratch_);
  metric_scratch_.PerGpuComputeTokensInto(&tokens_scratch_);
  return MetricFromTokens(tokens_scratch_);
}

bool Scheduler::ShouldTrigger(int64_t step, double metric_value) const {
  if (options_.policy == TriggerPolicy::kStaticInterval) {
    return step % options_.static_interval_steps == 0;
  }
  const double threshold = options_.metric == TriggerMetric::kMaxRatio
                               ? options_.threshold
                               : options_.variance_threshold;
  return metric_value > threshold;
}

SchedulerDecision Scheduler::OnStep(int64_t step,
                                    const Assignment& assignment,
                                    Placement* target, bool force_trigger,
                                    int chunk_incumbent) {
  FLEXMOE_CHECK(target != nullptr);
  SchedulerDecision decision;
  decision.metric_before = MetricOf(assignment, *target);
  decision.metric_after = decision.metric_before;

  // Capacity-change trigger: any health transition since the last
  // invocation (device lost, straggler appeared or recovered, device
  // joined) forces re-planning — the placement that balanced the old
  // cluster does not balance the new one. The trigger is remembered for
  // the whole step, because one Scheduler serves every MoE layer and each
  // layer's OnStep call must see it.
  bool capacity_changed = false;
  if (health_ != nullptr) {
    if (health_->version() != last_health_version_) {
      last_health_version_ = health_->version();
      capacity_trigger_step_ = step;
    }
    capacity_changed = step == capacity_trigger_step_;
  }
  if (!force_trigger && !capacity_changed &&
      !ShouldTrigger(step, decision.metric_before)) {
    return decision;
  }

  decision.triggered = true;

  // Migrate-away first: vExpert capacity parked on degraded devices
  // throttles every expert partition that includes it, so evacuation
  // precedes balance planning.
  if (health_ != nullptr && health_->AnyDegraded() &&
      options_.max_evacuations > 0) {
    const std::vector<ModOp> evac =
        policy_maker_->PlanEvacuation(*target, options_.max_evacuations);
    for (const ModOp& op : evac) {
      FLEXMOE_CHECK_OK(ApplyOp(op, target));
      decision.ops.push_back(op);
      ++decision.evacuations;
    }
  }

  // Algorithm 1 lines 3-8: iterate Expand/Shrink planning while the metric
  // stays above threshold and the Policy Maker keeps finding improvements.
  const double stop_threshold = options_.metric == TriggerMetric::kMaxRatio
                                    ? options_.threshold
                                    : options_.variance_threshold;
  double metric = decision.metric_before;
  bool state_ready = false;
  for (int round = 0; round < options_.max_plan_iterations; ++round) {
    if (options_.policy == TriggerPolicy::kDynamic &&
        metric <= stop_threshold) {
      break;
    }
    // One full O(E*G + G^2) rebuild per trigger (lazily, so a trigger that
    // never reaches the plan loop pays nothing); every later round and
    // candidate runs O(Δ) on the incremental state.
    if (!state_ready) {
      plan_state_.Reset(assignment, *target);
      state_ready = true;
    }
    PlanSearchStats stats;
    const std::vector<ModOp> plan =
        policy_maker_->PlanOnState(&plan_state_, &stats);
    decision.candidates_evaluated += stats.candidates_evaluated;
    if (round == 0) {
      decision.est_score_before = stats.score_before;
      decision.est_score_after = stats.score_before;
    }
    if (plan.empty()) break;  // Algorithm 1 lines 5-6
    decision.est_score_after = stats.best_score;
    for (const ModOp& op : plan) {
      FLEXMOE_CHECK_OK(ApplyOp(op, target));
      FLEXMOE_CHECK(plan_state_.Apply(op));
      decision.ops.push_back(op);
    }
    ++decision.plan_rounds;
    // The state's integer loads ARE the loads a fresh route of the updated
    // target would produce, so the round metric needs no re-route.
    metric = MetricFromTokens(plan_state_.per_gpu_compute_tokens());
  }
  decision.metric_after = metric;

  // Auto-K: recommend the chunk depth that minimizes the overhead-honest
  // Eq. 5 estimate of the placement the plan loop just produced. Reuses
  // the plan loop's incremental state when a round ran; a trigger that
  // never reached the loop (dynamic policy already under threshold) pays
  // the one Reset here — still once per trigger, never per step.
  if (options_.plan_chunk_depth) {
    if (!state_ready) {
      plan_state_.Reset(assignment, *target);
      state_ready = true;
    }
    decision.pipeline_chunks = plan_state_.BestChunkDepth(chunk_incumbent);
  }

  // Algorithm 1 line 9: background Migrations.
  if (options_.max_migrations > 0) {
    const std::vector<ModOp> migrations =
        policy_maker_->PlanMigrations(*target, options_.max_migrations);
    for (const ModOp& op : migrations) {
      FLEXMOE_CHECK_OK(ApplyOp(op, target));
      decision.ops.push_back(op);
      ++decision.migrations;
    }
  }
  return decision;
}

}  // namespace flexmoe
