#include "core/metrics.h"

#include "util/status.h"
#include "util/string_util.h"

namespace flexmoe {

StepMetrics MetricsFromTiming(int64_t step, double step_seconds,
                              double a2a_seconds, double compute_seconds,
                              double sync_seconds, double non_moe_seconds,
                              const std::vector<double>& per_gpu_expert_compute,
                              double balance_ratio, double token_efficiency,
                              int64_t tokens_total, int64_t tokens_dropped,
                              int num_alive_gpus) {
  StepMetrics m;
  m.step = step;
  m.step_seconds = step_seconds;
  m.a2a_seconds = a2a_seconds;
  m.compute_seconds = compute_seconds;
  m.sync_seconds = sync_seconds;
  m.non_moe_seconds = non_moe_seconds;
  m.balance_ratio = balance_ratio;
  m.token_efficiency = token_efficiency;
  m.tokens_total = tokens_total;
  m.tokens_dropped = tokens_dropped;

  double max_c = 0.0, mean_c = 0.0;
  for (double v : per_gpu_expert_compute) {
    max_c = v > max_c ? v : max_c;
    mean_c += v;
  }
  const int denom = num_alive_gpus > 0
                        ? num_alive_gpus
                        : static_cast<int>(per_gpu_expert_compute.size());
  if (denom > 0) mean_c /= static_cast<double>(denom);
  m.expert_efficiency = max_c > 0.0 ? mean_c / max_c : 1.0;
  m.gpu_utilization =
      step_seconds > 0.0 ? (mean_c + non_moe_seconds) / step_seconds : 0.0;
  return m;
}

void TrainingStats::Add(const StepMetrics& m) { steps_.push_back(m); }

template <typename F>
double TrainingStats::MeanOver(int warmup, F&& get) const {
  if (static_cast<size_t>(warmup) >= steps_.size()) return 0.0;
  double sum = 0.0;
  int64_t n = 0;
  for (size_t i = static_cast<size_t>(warmup); i < steps_.size(); ++i) {
    sum += get(steps_[i]);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TrainingStats::MeanStepSeconds(int warmup) const {
  return MeanOver(warmup, [](const StepMetrics& m) { return m.step_seconds; });
}

double TrainingStats::MeanBalanceRatio(int warmup) const {
  return MeanOver(warmup,
                  [](const StepMetrics& m) { return m.balance_ratio; });
}

double TrainingStats::MeanTokenEfficiency(int warmup) const {
  return MeanOver(warmup,
                  [](const StepMetrics& m) { return m.token_efficiency; });
}

double TrainingStats::MeanExpertEfficiency(int warmup) const {
  return MeanOver(warmup,
                  [](const StepMetrics& m) { return m.expert_efficiency; });
}

double TrainingStats::MeanGpuUtilization(int warmup) const {
  return MeanOver(warmup,
                  [](const StepMetrics& m) { return m.gpu_utilization; });
}

double TrainingStats::TotalSeconds() const {
  double total = 0.0;
  for (const StepMetrics& m : steps_) total += m.step_seconds;
  return total;
}

int64_t TrainingStats::TotalOpsApplied() const {
  int64_t total = 0;
  for (const StepMetrics& m : steps_) total += m.ops_applied;
  return total;
}

int64_t TrainingStats::TotalTokensDropped() const {
  int64_t total = 0;
  for (const StepMetrics& m : steps_) total += m.tokens_dropped;
  return total;
}

double TrainingStats::TotalRecoverySeconds() const {
  double total = 0.0;
  for (const StepMetrics& m : steps_) total += m.recovery_seconds;
  return total;
}

int64_t TrainingStats::TotalFaultsApplied() const {
  int64_t total = 0;
  for (const StepMetrics& m : steps_) total += m.faults_applied;
  return total;
}

int64_t TrainingStats::DegradedSteps() const {
  int64_t total = 0;
  for (const StepMetrics& m : steps_) total += m.degraded ? 1 : 0;
  return total;
}

double TrainingStats::Throughput(double tokens_per_step, int warmup) const {
  const double mean = MeanStepSeconds(warmup);
  return mean > 0.0 ? tokens_per_step / mean : 0.0;
}

std::string TrainingStats::Summary() const {
  return StrFormat(
      "steps=%lld mean_step=%s balance=%.3f token_eff=%.3f expert_eff=%.3f "
      "gpu_util=%.3f ops=%lld",
      static_cast<long long>(num_steps()), HumanTime(MeanStepSeconds()).c_str(),
      MeanBalanceRatio(), MeanTokenEfficiency(), MeanExpertEfficiency(),
      MeanGpuUtilization(), static_cast<long long>(TotalOpsApplied()));
}

}  // namespace flexmoe
