#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "moe/transformer.h"
#include "util/status.h"

namespace flexmoe {

ExpertShape ShapeFromModel(const ModelConfig& model) {
  ExpertShape shape;
  shape.fwdbwd_flops_per_token = model.expert_fwdbwd_flops_per_token();
  shape.token_bytes = model.token_bytes();
  shape.grad_bytes = model.expert_grad_bytes();
  shape.state_bytes = model.expert_state_bytes();
  shape.fwd_fraction = model.expert_fwd_flops_per_token() /
                       model.expert_fwdbwd_flops_per_token();
  return shape;
}

GpuId LayerCostEstimate::BottleneckGpu() const {
  GpuId worst = 0;
  for (size_t g = 1; g < per_gpu_seconds.size(); ++g) {
    if (per_gpu_seconds[g] > per_gpu_seconds[static_cast<size_t>(worst)]) {
      worst = static_cast<GpuId>(g);
    }
  }
  return worst;
}

CostModel::CostModel(const HardwareProfile* profile, const ExpertShape& shape)
    : profile_(profile), shape_(shape) {
  FLEXMOE_CHECK(profile != nullptr);
  FLEXMOE_CHECK(shape.fwdbwd_flops_per_token > 0);
  FLEXMOE_CHECK(shape.token_bytes > 0);
}

double CostModel::CombineGpuSeconds(double compute, double a2a,
                                    double sync) const {
  return CombineGpuSecondsAt(compute, a2a, sync, pipeline_chunks_);
}

double CostModel::CombineGpuSecondsAt(double compute, double a2a, double sync,
                                      int chunks) const {
  if (chunks <= 1) {
    // Serial path: the pre-pipelining additive Eq. 5 combiner, bitwise.
    return compute + a2a + sync;
  }
  // a2a is Eq. 8's 4 crossings (fwd dispatch+combine, bwd dispatch+
  // combine); one crossing is a2a/4. Both MoE legs pipeline
  // (PipelineOptions): d = m = one crossing and per leg
  // leg(c_K) = max(d + (c_K+m)/K, c_K + m/K, m), evaluated at the forward
  // and backward compute shares. Sync stays serial. Each leg splits every
  // expert kernel into K launches, so the GPU's compute stream pays (K-1)
  // extra kernel_overhead_sec per leg — charged INSIDE the leg's compute
  // share (c_K = c + (K-1)*ovh), where it rides the same overlap the real
  // launches do: a compute-bound leg degenerates to c + (K-1)*ovh + m/K
  // (the full 2(K-1)*ovh per-layer penalty across both legs, making the
  // estimate non-monotone in K exactly like the measured wall law), while
  // a wire-bound leg hides launches behind the crossings just as the
  // executor's streams hide them. Charging the overhead serially outside
  // the max over-penalizes deep K on dispatch-heavy layers and mis-ranks
  // the candidates (the auto-K differential in bench_workload_suite).
  const double K = static_cast<double>(chunks);
  const double crossing = 0.25 * a2a;
  const double launches = (K - 1.0) * profile_->kernel_overhead_sec();
  const double fwd_compute = compute * shape_.fwd_fraction + launches;
  const double bwd_compute = compute - compute * shape_.fwd_fraction +
                             launches;
  const double fwd = std::max(
      {crossing + (fwd_compute + crossing) / K, fwd_compute + crossing / K,
       crossing});
  const double bwd = std::max(
      {crossing + (bwd_compute + crossing) / K, bwd_compute + crossing / K,
       crossing});
  return fwd + bwd + sync;
}

int CostModel::BestChunkDepth(const std::vector<double>& per_gpu_compute,
                              const std::vector<double>& per_gpu_a2a,
                              const std::vector<double>& per_gpu_sync,
                              int incumbent) const {
  const size_t num_gpus = per_gpu_compute.size();
  FLEXMOE_CHECK(per_gpu_a2a.size() == num_gpus);
  FLEXMOE_CHECK(per_gpu_sync.size() == num_gpus);
  constexpr size_t kNumCandidates =
      sizeof(kChunkDepthCandidates) / sizeof(kChunkDepthCandidates[0]);
  double seconds[kNumCandidates];
  double best_seconds = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < kNumCandidates; ++i) {
    double worst = 0.0;
    for (size_t g = 0; g < num_gpus; ++g) {
      worst = std::max(
          worst, CombineGpuSecondsAt(per_gpu_compute[g], per_gpu_a2a[g],
                                     per_gpu_sync[g], kChunkDepthCandidates[i]));
    }
    seconds[i] = worst;
    best_seconds = std::min(best_seconds, worst);
  }
  // Retention hysteresis (DESIGN.md §12.2): the incumbent depth survives
  // until some candidate beats it by more than the switch margin —
  // neighboring-depth estimates cross each other by fractions of a
  // percent with per-step routing noise, and switching inside that noise
  // trades real (if small) plan-timing perturbation for no modeled gain.
  for (size_t i = 0; i < kNumCandidates; ++i) {
    if (kChunkDepthCandidates[i] == incumbent &&
        seconds[i] <= best_seconds * (1.0 + kChunkDepthSwitchMargin)) {
      return incumbent;
    }
  }
  // Fresh pick (incumbent == 0, or a beaten incumbent): walk the
  // candidate ladder shallow-to-deep and adopt a deeper depth only when
  // it beats the current pick by more than the deepening margin. Depth
  // must earn its keep: each extra chunk buys real launch overhead and
  // per-message latency, some of which sits below the model's fidelity,
  // so a modeled gain inside the margin is not evidence the deeper depth
  // actually wins (DESIGN.md §12.2).
  size_t pick = 0;
  for (size_t i = 1; i < kNumCandidates; ++i) {
    if (seconds[i] < seconds[pick] * (1.0 - kChunkDepthDeepeningMargin)) {
      pick = i;
    }
  }
  return kChunkDepthCandidates[pick];
}

double CostModel::ComputeSeconds(int64_t tokens) const {
  if (tokens <= 0) return 0.0;
  return profile_->ComputeSeconds(static_cast<double>(tokens),
                                  shape_.fwdbwd_flops_per_token);
}

double CostModel::A2ASeconds(const RoutedAssignment& routed, GpuId dst) const {
  if (profile_->hierarchical_a2a()) return A2ASecondsHierarchical(routed, dst);
  // Eq. 8: pure bandwidth serialization at the receiving port; chunked
  // flows overlap per-message latencies, so latency enters once per phase.
  double seconds = 0.0;
  double max_lat = 0.0;
  for (GpuId src = 0; src < routed.num_gpus; ++src) {
    const int64_t tokens = routed.dispatch(src, dst);
    if (tokens <= 0) continue;
    const double bytes = static_cast<double>(tokens) * shape_.token_bytes;
    seconds += bytes / profile_->BandwidthBytesPerSec(src, dst);
    max_lat = std::max(max_lat, profile_->LatencySeconds(src, dst));
  }
  // Dispatch + combine, forward + backward: 4 crossings per step (Eq. 8).
  return 4.0 * (seconds + 2.0 * max_lat);
}

double CostModel::A2ASecondsHierarchical(const RoutedAssignment& routed,
                                         GpuId dst) const {
  // Per-node aggregated Eq. 8 (DESIGN.md Section 10): token counts fold
  // per source node in integer arithmetic, then one bandwidth term per
  // remote node (ascending), one intra-node term, and the loopback term —
  // a fixed canonical order, so incremental maintenance reproduces this
  // from-scratch evaluation bitwise.
  const Topology& topo = profile_->topology();
  const int num_nodes = topo.num_nodes();
  const int gpus_per_node = topo.gpus_per_node();
  const NodeId dst_node = topo.NodeOf(dst);
  const int64_t local = routed.dispatch(dst, dst);
  const bool aggregated = !routed.node_of.empty();

  double seconds = 0.0;
  double max_lat = 0.0;
  int64_t intra = 0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    int64_t node_tokens;
    if (aggregated) {
      node_tokens = routed.node_dispatch(n, dst);
    } else {
      node_tokens = 0;
      const GpuId first = n * gpus_per_node;
      for (GpuId src = first; src < first + gpus_per_node; ++src) {
        node_tokens += routed.dispatch(src, dst);
      }
    }
    if (n == dst_node) {
      intra = node_tokens - local;
      continue;
    }
    if (node_tokens <= 0) continue;
    const double bytes =
        static_cast<double>(node_tokens) * shape_.token_bytes;
    seconds += bytes / profile_->NodeBandwidthBytesPerSec(n, dst);
    max_lat = std::max(max_lat, profile_->NodeLatencySeconds(n, dst));
  }
  if (intra > 0) {
    const double bytes = static_cast<double>(intra) * shape_.token_bytes;
    seconds += bytes / profile_->NodeBandwidthBytesPerSec(dst_node, dst);
    max_lat = std::max(max_lat, profile_->NodeLatencySeconds(dst_node, dst));
  }
  if (local > 0) {
    const double bytes = static_cast<double>(local) * shape_.token_bytes;
    seconds += bytes / profile_->BandwidthBytesPerSec(dst, dst);
    max_lat = std::max(max_lat, profile_->LatencySeconds(dst, dst));
  }
  return 4.0 * (seconds + 2.0 * max_lat);
}

double CostModel::SyncSeconds(const Placement& placement, int expert) const {
  const std::vector<GpuId> group = placement.HostGpus(expert);
  if (group.size() < 2) return 0.0;
  return profile_->AllReduceSeconds(shape_.grad_bytes, group);
}

LayerCostEstimate CostModel::EstimateLayer(const RoutedAssignment& routed,
                                           const Placement& placement,
                                           bool include_sync) const {
  LayerCostEstimate est;
  EstimateLayerInto(routed, placement, include_sync, &est);
  return est;
}

void CostModel::EstimateLayerInto(const RoutedAssignment& routed,
                                  const Placement& placement,
                                  bool include_sync,
                                  LayerCostEstimate* out) const {
  FLEXMOE_CHECK(out != nullptr);
  const int num_gpus = routed.num_gpus;
  LayerCostEstimate& est = *out;
  est.per_gpu_seconds.assign(static_cast<size_t>(num_gpus), 0.0);
  est.per_gpu_compute.assign(static_cast<size_t>(num_gpus), 0.0);
  est.per_gpu_a2a.assign(static_cast<size_t>(num_gpus), 0.0);
  est.per_gpu_sync.assign(static_cast<size_t>(num_gpus), 0.0);

  // Per-expert sync costs are shared by all hosts of the expert.
  // thread_local scratch: this sits in the planner/metric hot loops
  // (scratch-ownership rules, DESIGN.md "Performance architecture").
  static thread_local std::vector<double> sync_of_expert;
  sync_of_expert.assign(static_cast<size_t>(routed.num_experts), 0.0);
  if (include_sync) {
    for (int e = 0; e < routed.num_experts; ++e) {
      sync_of_expert[static_cast<size_t>(e)] = SyncSeconds(placement, e);
    }
  }

  for (GpuId g = 0; g < num_gpus; ++g) {
    double compute = 0.0;
    double sync = 0.0;
    for (int e = 0; e < routed.num_experts; ++e) {
      const int64_t tokens = routed.expert_gpu_tokens(e, g);
      if (tokens > 0) compute += ComputeSeconds(tokens);
      if (placement.VExpertsOn(e, g) > 0) {
        sync += sync_of_expert[static_cast<size_t>(e)];
      }
    }
    const double a2a = A2ASeconds(routed, g);
    est.per_gpu_compute[static_cast<size_t>(g)] = compute;
    est.per_gpu_a2a[static_cast<size_t>(g)] = a2a;
    est.per_gpu_sync[static_cast<size_t>(g)] = sync;
    est.per_gpu_seconds[static_cast<size_t>(g)] =
        CombineGpuSeconds(compute, a2a, sync);
  }
  est.total_seconds = *std::max_element(est.per_gpu_seconds.begin(),
                                        est.per_gpu_seconds.end());
}

LayerCostEstimate CostModel::EstimateLayer(const Assignment& assignment,
                                           const Placement& placement) const {
  return EstimateLayer(FlexibleRouter::Route(assignment, placement),
                       placement);
}

LayerCostEstimate CostModel::EstimateLayer(const Assignment& assignment,
                                           const Placement& placement,
                                           RoutedAssignment* scratch) const {
  FLEXMOE_CHECK(scratch != nullptr);
  FlexibleRouter::RouteInto(assignment, placement, scratch);
  return EstimateLayer(*scratch, placement);
}

double CostModel::EstimateLayerSeconds(const Assignment& assignment,
                                       const Placement& placement) const {
  return EstimateLayer(assignment, placement).total_seconds;
}

double CostModel::EstimateLayerSeconds(const Assignment& assignment,
                                       const Placement& placement,
                                       RoutedAssignment* scratch) const {
  return EstimateLayer(assignment, placement, scratch).total_seconds;
}

double EstimateForwardMicrobatchSeconds(const HardwareProfile& profile,
                                        const ModelConfig& model,
                                        int num_gpus, int64_t tokens,
                                        int chunks) {
  FLEXMOE_CHECK(num_gpus > 0);
  FLEXMOE_CHECK(chunks >= 0);
  if (tokens <= 0) return 0.0;
  if (chunks == 0) {
    // Auto-K: the executor picks a per-layer depth from the same
    // candidate set, so the min of the per-depth floors is a valid floor
    // for whatever it chose (each floor(K) bounds the measured forward at
    // depth K from below).
    double floor = std::numeric_limits<double>::infinity();
    for (const int k : CostModel::kChunkDepthCandidates) {
      floor = std::min(floor, EstimateForwardMicrobatchSeconds(
                                  profile, model, num_gpus, tokens, k));
    }
    return floor;
  }
  const double assignments =
      static_cast<double>(tokens) * static_cast<double>(model.top_k);
  const double per_gpu = assignments / static_cast<double>(num_gpus);
  const double fwd_flops = model.expert_fwd_flops_per_token();

  // Expert compute: a balanced layout puts per_gpu assignments on every
  // device, so the Eq. 5 outer max degenerates to any one GPU's share.
  const double compute_per_layer = profile.ComputeSeconds(per_gpu, fwd_flops);

  // All-to-All: under the uniform pattern each destination receives
  // per_gpu tokens spread evenly over the sources. Two crossings per layer
  // (dispatch + combine) — the forward half of Eq. 8's 4x — and the
  // bottleneck destination sets the phase time. Two latency charges per
  // crossing for the serial floor; the chunked floor charges one (see
  // below).
  const double per_pair_bytes =
      per_gpu / static_cast<double>(num_gpus) * model.token_bytes();
  double worst_a2a = 0.0;
  double worst_a2a_one_lat = 0.0;
  for (GpuId dst = 0; dst < num_gpus; ++dst) {
    double seconds = 0.0;
    double max_lat = 0.0;
    for (GpuId src = 0; src < num_gpus; ++src) {
      seconds += per_pair_bytes / profile.BandwidthBytesPerSec(src, dst);
      max_lat = std::max(max_lat, profile.LatencySeconds(src, dst));
    }
    worst_a2a = std::max(worst_a2a, 2.0 * (seconds + 2.0 * max_lat));
    worst_a2a_one_lat =
        std::max(worst_a2a_one_lat, 2.0 * (seconds + max_lat));
  }

  // Non-MoE forward share: the same fwd/fwdbwd scaling the forward
  // executor applies (StepExecutor::ExecuteForward).
  const double fwd_fraction =
      fwd_flops / model.expert_fwdbwd_flops_per_token();
  const double non_moe = NonMoEComputeSeconds(model, profile) * fwd_fraction;

  if (chunks <= 1) {
    // Legacy serial floor, kept expression-for-expression so chunks == 1
    // callers get bitwise-identical estimates.
    return static_cast<double>(model.num_moe_layers) *
               (compute_per_layer + worst_a2a) +
           non_moe;
  }

  // Pipelined floor (DESIGN.md Section 11/12): the A2A term charges one
  // wire latency per crossing, not two — on the balanced route this floor
  // models, the engine's self-pair message (loopback latency) opens the
  // bottleneck ingress port at phase start, so the measured phase pays
  // total serialization plus a single remote latency (the §11.3 caveat,
  // fixed here for the chunked branch only; the serial expression above
  // stays pinned by the serving goldens). Each phase is half of it.
  const double d = worst_a2a_one_lat / 2.0;
  const double m = worst_a2a_one_lat / 2.0;
  // Chunked compute provably pays extra kernel launches: the per-GPU
  // compute stream runs min(K, per_gpu) non-empty chunk kernels per layer
  // (the per-cell split zeroes chunks beyond the cell's token count), and
  // the bottleneck GPU hosts at least the balanced share. One launch is
  // already inside compute_per_layer, so (eff - 1) more. Per-leg — the
  // forward-only path has one compute stream — unlike CombineGpuSeconds'
  // full-step 2*(K-1) term.
  const double K = static_cast<double>(chunks);
  const double eff = std::min(K, std::max(1.0, per_gpu));
  const double c =
      compute_per_layer + (eff - 1.0) * profile.kernel_overhead_sec();
  // F is a floor on the chunked executor because the last chunk carries
  // at least 1/K of every cell (the per-cell split makes it the ceil):
  // the combine port cannot start its last chunk before the dispatch port
  // drained (d + tail compute + tail combine), nor before compute drained
  // (c + tail combine), nor finish before its own serialization (m).
  const double per_layer = std::max({d + (c + m) / K, c + m / K, m});
  return static_cast<double>(model.num_moe_layers) * per_layer + non_moe;
}

ForwardFloorEstimator::ForwardFloorEstimator(const HardwareProfile* profile,
                                             const ModelConfig& model,
                                             int num_gpus, int chunks)
    : profile_(profile), model_(model), num_gpus_(num_gpus), chunks_(chunks) {
  FLEXMOE_CHECK(profile != nullptr);
  FLEXMOE_CHECK(num_gpus > 0);
  FLEXMOE_CHECK(chunks >= 0);
}

void ForwardFloorEstimator::set_num_gpus(int num_gpus) {
  FLEXMOE_CHECK(num_gpus > 0);
  if (num_gpus == num_gpus_) return;
  num_gpus_ = num_gpus;
  for (Slot& slot : slots_) slot = Slot{};
}

void ForwardFloorEstimator::set_chunks(int chunks) {
  FLEXMOE_CHECK(chunks >= 0);
  if (chunks == chunks_) return;
  chunks_ = chunks;
  for (Slot& slot : slots_) slot = Slot{};
}

double ForwardFloorEstimator::Seconds(int64_t tokens) const {
  // Fibonacci-hash the token count into the direct-mapped cache; on a
  // collision the newer entry simply wins (the estimate itself is the
  // source of truth, the cache only skips the O(G^2) A2A scan).
  const size_t idx =
      (static_cast<uint64_t>(tokens) * 0x9e3779b97f4a7c15ULL) >> 32 &
      (kSlots - 1);
  Slot& slot = slots_[idx];
  if (slot.tokens != tokens) {
    slot.tokens = tokens;
    slot.seconds = EstimateForwardMicrobatchSeconds(*profile_, model_,
                                                    num_gpus_, tokens,
                                                    chunks_);
  }
  return slot.seconds;
}

}  // namespace flexmoe
