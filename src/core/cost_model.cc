#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "moe/transformer.h"
#include "util/status.h"

namespace flexmoe {

ExpertShape ShapeFromModel(const ModelConfig& model) {
  ExpertShape shape;
  shape.fwdbwd_flops_per_token = model.expert_fwdbwd_flops_per_token();
  shape.token_bytes = model.token_bytes();
  shape.grad_bytes = model.expert_grad_bytes();
  shape.state_bytes = model.expert_state_bytes();
  shape.fwd_fraction = model.expert_fwd_flops_per_token() /
                       model.expert_fwdbwd_flops_per_token();
  return shape;
}

GpuId LayerCostEstimate::BottleneckGpu() const {
  GpuId worst = 0;
  for (size_t g = 1; g < per_gpu_seconds.size(); ++g) {
    if (per_gpu_seconds[g] > per_gpu_seconds[static_cast<size_t>(worst)]) {
      worst = static_cast<GpuId>(g);
    }
  }
  return worst;
}

CostModel::CostModel(const HardwareProfile* profile, const ExpertShape& shape)
    : profile_(profile), shape_(shape) {
  FLEXMOE_CHECK(profile != nullptr);
  FLEXMOE_CHECK(shape.fwdbwd_flops_per_token > 0);
  FLEXMOE_CHECK(shape.token_bytes > 0);
}

double CostModel::CombineGpuSeconds(double compute, double a2a,
                                    double sync) const {
  if (pipeline_chunks_ <= 1) {
    // Serial path: the pre-pipelining additive Eq. 5 combiner, bitwise.
    return compute + a2a + sync;
  }
  // a2a is Eq. 8's 4 crossings (fwd dispatch+combine, bwd dispatch+
  // combine); one crossing is a2a/4. Only the forward leg pipelines
  // (PipelineOptions): d = m = one crossing, c = the forward compute
  // share, F = max(d + (c+m)/K, c + m/K, m). Backward compute and its two
  // crossings stay serial, as does sync.
  const double K = static_cast<double>(pipeline_chunks_);
  const double crossing = 0.25 * a2a;
  const double fwd_compute = compute * shape_.fwd_fraction;
  const double fwd = std::max(
      {crossing + (fwd_compute + crossing) / K, fwd_compute + crossing / K,
       crossing});
  return fwd + (compute - fwd_compute) + 0.5 * a2a + sync;
}

double CostModel::ComputeSeconds(int64_t tokens) const {
  if (tokens <= 0) return 0.0;
  return profile_->ComputeSeconds(static_cast<double>(tokens),
                                  shape_.fwdbwd_flops_per_token);
}

double CostModel::A2ASeconds(const RoutedAssignment& routed, GpuId dst) const {
  if (profile_->hierarchical_a2a()) return A2ASecondsHierarchical(routed, dst);
  // Eq. 8: pure bandwidth serialization at the receiving port; chunked
  // flows overlap per-message latencies, so latency enters once per phase.
  double seconds = 0.0;
  double max_lat = 0.0;
  for (GpuId src = 0; src < routed.num_gpus; ++src) {
    const int64_t tokens = routed.dispatch(src, dst);
    if (tokens <= 0) continue;
    const double bytes = static_cast<double>(tokens) * shape_.token_bytes;
    seconds += bytes / profile_->BandwidthBytesPerSec(src, dst);
    max_lat = std::max(max_lat, profile_->LatencySeconds(src, dst));
  }
  // Dispatch + combine, forward + backward: 4 crossings per step (Eq. 8).
  return 4.0 * (seconds + 2.0 * max_lat);
}

double CostModel::A2ASecondsHierarchical(const RoutedAssignment& routed,
                                         GpuId dst) const {
  // Per-node aggregated Eq. 8 (DESIGN.md Section 10): token counts fold
  // per source node in integer arithmetic, then one bandwidth term per
  // remote node (ascending), one intra-node term, and the loopback term —
  // a fixed canonical order, so incremental maintenance reproduces this
  // from-scratch evaluation bitwise.
  const Topology& topo = profile_->topology();
  const int num_nodes = topo.num_nodes();
  const int gpus_per_node = topo.gpus_per_node();
  const NodeId dst_node = topo.NodeOf(dst);
  const int64_t local = routed.dispatch(dst, dst);
  const bool aggregated = !routed.node_of.empty();

  double seconds = 0.0;
  double max_lat = 0.0;
  int64_t intra = 0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    int64_t node_tokens;
    if (aggregated) {
      node_tokens = routed.node_dispatch(n, dst);
    } else {
      node_tokens = 0;
      const GpuId first = n * gpus_per_node;
      for (GpuId src = first; src < first + gpus_per_node; ++src) {
        node_tokens += routed.dispatch(src, dst);
      }
    }
    if (n == dst_node) {
      intra = node_tokens - local;
      continue;
    }
    if (node_tokens <= 0) continue;
    const double bytes =
        static_cast<double>(node_tokens) * shape_.token_bytes;
    seconds += bytes / profile_->NodeBandwidthBytesPerSec(n, dst);
    max_lat = std::max(max_lat, profile_->NodeLatencySeconds(n, dst));
  }
  if (intra > 0) {
    const double bytes = static_cast<double>(intra) * shape_.token_bytes;
    seconds += bytes / profile_->NodeBandwidthBytesPerSec(dst_node, dst);
    max_lat = std::max(max_lat, profile_->NodeLatencySeconds(dst_node, dst));
  }
  if (local > 0) {
    const double bytes = static_cast<double>(local) * shape_.token_bytes;
    seconds += bytes / profile_->BandwidthBytesPerSec(dst, dst);
    max_lat = std::max(max_lat, profile_->LatencySeconds(dst, dst));
  }
  return 4.0 * (seconds + 2.0 * max_lat);
}

double CostModel::SyncSeconds(const Placement& placement, int expert) const {
  const std::vector<GpuId> group = placement.HostGpus(expert);
  if (group.size() < 2) return 0.0;
  return profile_->AllReduceSeconds(shape_.grad_bytes, group);
}

LayerCostEstimate CostModel::EstimateLayer(const RoutedAssignment& routed,
                                           const Placement& placement,
                                           bool include_sync) const {
  LayerCostEstimate est;
  EstimateLayerInto(routed, placement, include_sync, &est);
  return est;
}

void CostModel::EstimateLayerInto(const RoutedAssignment& routed,
                                  const Placement& placement,
                                  bool include_sync,
                                  LayerCostEstimate* out) const {
  FLEXMOE_CHECK(out != nullptr);
  const int num_gpus = routed.num_gpus;
  LayerCostEstimate& est = *out;
  est.per_gpu_seconds.assign(static_cast<size_t>(num_gpus), 0.0);
  est.per_gpu_compute.assign(static_cast<size_t>(num_gpus), 0.0);
  est.per_gpu_a2a.assign(static_cast<size_t>(num_gpus), 0.0);
  est.per_gpu_sync.assign(static_cast<size_t>(num_gpus), 0.0);

  // Per-expert sync costs are shared by all hosts of the expert.
  // thread_local scratch: this sits in the planner/metric hot loops
  // (scratch-ownership rules, DESIGN.md "Performance architecture").
  static thread_local std::vector<double> sync_of_expert;
  sync_of_expert.assign(static_cast<size_t>(routed.num_experts), 0.0);
  if (include_sync) {
    for (int e = 0; e < routed.num_experts; ++e) {
      sync_of_expert[static_cast<size_t>(e)] = SyncSeconds(placement, e);
    }
  }

  for (GpuId g = 0; g < num_gpus; ++g) {
    double compute = 0.0;
    double sync = 0.0;
    for (int e = 0; e < routed.num_experts; ++e) {
      const int64_t tokens = routed.expert_gpu_tokens(e, g);
      if (tokens > 0) compute += ComputeSeconds(tokens);
      if (placement.VExpertsOn(e, g) > 0) {
        sync += sync_of_expert[static_cast<size_t>(e)];
      }
    }
    const double a2a = A2ASeconds(routed, g);
    est.per_gpu_compute[static_cast<size_t>(g)] = compute;
    est.per_gpu_a2a[static_cast<size_t>(g)] = a2a;
    est.per_gpu_sync[static_cast<size_t>(g)] = sync;
    est.per_gpu_seconds[static_cast<size_t>(g)] =
        CombineGpuSeconds(compute, a2a, sync);
  }
  est.total_seconds = *std::max_element(est.per_gpu_seconds.begin(),
                                        est.per_gpu_seconds.end());
}

LayerCostEstimate CostModel::EstimateLayer(const Assignment& assignment,
                                           const Placement& placement) const {
  return EstimateLayer(FlexibleRouter::Route(assignment, placement),
                       placement);
}

LayerCostEstimate CostModel::EstimateLayer(const Assignment& assignment,
                                           const Placement& placement,
                                           RoutedAssignment* scratch) const {
  FLEXMOE_CHECK(scratch != nullptr);
  FlexibleRouter::RouteInto(assignment, placement, scratch);
  return EstimateLayer(*scratch, placement);
}

double CostModel::EstimateLayerSeconds(const Assignment& assignment,
                                       const Placement& placement) const {
  return EstimateLayer(assignment, placement).total_seconds;
}

double CostModel::EstimateLayerSeconds(const Assignment& assignment,
                                       const Placement& placement,
                                       RoutedAssignment* scratch) const {
  return EstimateLayer(assignment, placement, scratch).total_seconds;
}

double EstimateForwardMicrobatchSeconds(const HardwareProfile& profile,
                                        const ModelConfig& model,
                                        int num_gpus, int64_t tokens,
                                        int chunks) {
  FLEXMOE_CHECK(num_gpus > 0);
  FLEXMOE_CHECK(chunks >= 1);
  if (tokens <= 0) return 0.0;
  const double assignments =
      static_cast<double>(tokens) * static_cast<double>(model.top_k);
  const double per_gpu = assignments / static_cast<double>(num_gpus);
  const double fwd_flops = model.expert_fwd_flops_per_token();

  // Expert compute: a balanced layout puts per_gpu assignments on every
  // device, so the Eq. 5 outer max degenerates to any one GPU's share.
  const double compute_per_layer = profile.ComputeSeconds(per_gpu, fwd_flops);

  // All-to-All: under the uniform pattern each destination receives
  // per_gpu tokens spread evenly over the sources. Two crossings per layer
  // (dispatch + combine) — the forward half of Eq. 8's 4x — and the
  // bottleneck destination sets the phase time.
  const double per_pair_bytes =
      per_gpu / static_cast<double>(num_gpus) * model.token_bytes();
  double worst_a2a = 0.0;
  for (GpuId dst = 0; dst < num_gpus; ++dst) {
    double seconds = 0.0;
    double max_lat = 0.0;
    for (GpuId src = 0; src < num_gpus; ++src) {
      seconds += per_pair_bytes / profile.BandwidthBytesPerSec(src, dst);
      max_lat = std::max(max_lat, profile.LatencySeconds(src, dst));
    }
    worst_a2a = std::max(worst_a2a, 2.0 * (seconds + 2.0 * max_lat));
  }

  // Non-MoE forward share: the same fwd/fwdbwd scaling the forward
  // executor applies (StepExecutor::ExecuteForward).
  const double fwd_fraction =
      fwd_flops / model.expert_fwdbwd_flops_per_token();
  const double non_moe = NonMoEComputeSeconds(model, profile) * fwd_fraction;

  if (chunks <= 1) {
    // Legacy serial floor, kept expression-for-expression so chunks == 1
    // callers get bitwise-identical estimates.
    return static_cast<double>(model.num_moe_layers) *
               (compute_per_layer + worst_a2a) +
           non_moe;
  }

  // Pipelined floor (DESIGN.md Section 11): worst_a2a covers dispatch +
  // combine, so each phase is exactly half of it. F is a floor on the
  // chunked executor because the last chunk carries at least 1/K of every
  // cell (the per-cell split makes it the ceil): the combine port cannot
  // start its last chunk before the dispatch port drained (d + tail
  // compute + tail combine), nor before compute drained (c + tail
  // combine), nor finish before its own serialization (m).
  const double d = worst_a2a / 2.0;
  const double m = worst_a2a / 2.0;
  const double c = compute_per_layer;
  const double K = static_cast<double>(chunks);
  const double per_layer = std::max({d + (c + m) / K, c + m / K, m});
  return static_cast<double>(model.num_moe_layers) * per_layer + non_moe;
}

ForwardFloorEstimator::ForwardFloorEstimator(const HardwareProfile* profile,
                                             const ModelConfig& model,
                                             int num_gpus, int chunks)
    : profile_(profile), model_(model), num_gpus_(num_gpus), chunks_(chunks) {
  FLEXMOE_CHECK(profile != nullptr);
  FLEXMOE_CHECK(num_gpus > 0);
  FLEXMOE_CHECK(chunks >= 1);
}

void ForwardFloorEstimator::set_num_gpus(int num_gpus) {
  FLEXMOE_CHECK(num_gpus > 0);
  if (num_gpus == num_gpus_) return;
  num_gpus_ = num_gpus;
  for (Slot& slot : slots_) slot = Slot{};
}

double ForwardFloorEstimator::Seconds(int64_t tokens) const {
  // Fibonacci-hash the token count into the direct-mapped cache; on a
  // collision the newer entry simply wins (the estimate itself is the
  // source of truth, the cache only skips the O(G^2) A2A scan).
  const size_t idx =
      (static_cast<uint64_t>(tokens) * 0x9e3779b97f4a7c15ULL) >> 32 &
      (kSlots - 1);
  Slot& slot = slots_[idx];
  if (slot.tokens != tokens) {
    slot.tokens = tokens;
    slot.seconds = EstimateForwardMicrobatchSeconds(*profile_, model_,
                                                    num_gpus_, tokens,
                                                    chunks_);
  }
  return slot.seconds;
}

}  // namespace flexmoe
