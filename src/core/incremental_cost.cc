#include "core/incremental_cost.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flexmoe {

double Score8Norm(const std::vector<double>& per_gpu_seconds) {
  double acc = 0.0;
  for (double v : per_gpu_seconds) {
    const double v2 = v * v;
    const double v4 = v2 * v2;
    acc += v4 * v4;
  }
  return std::pow(acc, 1.0 / 8.0);
}

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

int PowerOfTwoAtLeast(int n) {
  int cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

LayerCostState::LayerCostState(const CostModel* cost_model, bool include_sync)
    : cost_model_(cost_model), include_sync_(include_sync) {
  FLEXMOE_CHECK(cost_model != nullptr);
}

void LayerCostState::Reset(const Assignment& assignment,
                           const Placement& placement) {
  FLEXMOE_CHECK(assignment.num_experts() == placement.num_experts());
  FLEXMOE_CHECK(assignment.num_gpus() == placement.num_gpus());
  assignment_ = &assignment;
  if (placement_.has_value()) {
    *placement_ = placement;  // reuses the count matrix allocation
  } else {
    placement_.emplace(placement);
  }
  const int num_experts = assignment.num_experts();
  const int num_gpus = assignment.num_gpus();
  const Topology& topo = cost_model_->profile().topology();

  // With per-node A2A aggregation active, routing maintains the per-node
  // dispatch sums the hierarchical Eq. 8 path consumes, so RefreshGpu's
  // A2A recompute is O(nodes) float terms instead of O(G).
  if (cost_model_->profile().hierarchical_a2a()) {
    routed_.EnableNodeAggregation(topo);
  } else {
    routed_.DisableNodeAggregation();
  }
  FlexibleRouter::RouteInto(assignment, placement, &routed_);

  sync_of_expert_.assign(static_cast<size_t>(num_experts), 0.0);
  caps_.assign(static_cast<size_t>(num_experts), 0.0);
  gpu_experts_.clear();
  gpu_experts_.resize(static_cast<size_t>(num_gpus));
  for (int e = 0; e < num_experts; ++e) {
    RefreshExpert(e);
    for (const auto& [gpu, count] : placement_->Replicas(e)) {
      gpu_experts_[static_cast<size_t>(gpu)].insert(e);
    }
  }

  per_gpu_compute_.assign(static_cast<size_t>(num_gpus), 0.0);
  per_gpu_a2a_.assign(static_cast<size_t>(num_gpus), 0.0);
  per_gpu_sync_.assign(static_cast<size_t>(num_gpus), 0.0);
  per_gpu_total_.assign(static_cast<size_t>(num_gpus), 0.0);
  gpu_tokens_.assign(static_cast<size_t>(num_gpus), 0);
  cross_in_.assign(static_cast<size_t>(num_gpus), 0);
  node_inflow_.assign(static_cast<size_t>(topo.num_nodes()), 0);
  gpu_link_in_.assign(
      static_cast<size_t>(num_gpus) * static_cast<size_t>(topo.num_nodes()),
      0);
  link_load_.assign(static_cast<size_t>(topo.num_nodes()) *
                        static_cast<size_t>(topo.num_nodes()),
                    0);
  link_scratch_.assign(static_cast<size_t>(topo.num_nodes()), 0);

  tourney_cap_ = PowerOfTwoAtLeast(num_gpus);
  tourney_.assign(static_cast<size_t>(2 * tourney_cap_), kNegInf);
  for (GpuId g = 0; g < num_gpus; ++g) RefreshGpu(g);

  depth_ = 0;  // pooled undo_records_ keep their snapshot capacities
  affected_.clear();
  affected_mark_.assign(static_cast<size_t>(num_gpus), 0);
}

void LayerCostState::RefreshExpert(int expert) {
  caps_[static_cast<size_t>(expert)] =
      static_cast<double>(assignment_->ExpertTotal(expert)) /
      static_cast<double>(placement_->VExperts(expert));
  if (include_sync_) {
    sync_of_expert_[static_cast<size_t>(expert)] =
        cost_model_->SyncSeconds(*placement_, expert);
  }
}

void LayerCostState::RefreshGpu(GpuId g) {
  // Canonical recompute: the exact term sequence EstimateLayer produces
  // for this GPU, restricted to hosted experts (the only experts that can
  // contribute compute or sync here).
  double compute = 0.0;
  double sync = 0.0;
  int64_t tokens_total = 0;
  for (const int e : gpu_experts_[static_cast<size_t>(g)]) {
    const int64_t tokens = routed_.expert_gpu_tokens(e, g);
    if (tokens > 0) compute += cost_model_->ComputeSeconds(tokens);
    tokens_total += tokens;
    if (include_sync_) sync += sync_of_expert_[static_cast<size_t>(e)];
  }
  const double a2a = cost_model_->A2ASeconds(routed_, g);

  const Topology& topo = cost_model_->profile().topology();
  const NodeId node = topo.NodeOf(g);
  const int num_nodes = static_cast<int>(node_inflow_.size());
  // Per-source-node inflow: sums and deltas are pure integers, so the
  // link_load_ matrix tracks a from-scratch recount exactly (and Undo's
  // RefreshGpu over restored rows cancels the deltas bitwise).
  if (!routed_.node_of.empty()) {
    for (NodeId n = 0; n < num_nodes; ++n) {
      link_scratch_[static_cast<size_t>(n)] = routed_.node_dispatch(n, g);
    }
  } else {
    std::fill(link_scratch_.begin(), link_scratch_.end(), int64_t{0});
    for (GpuId src = 0; src < routed_.num_gpus; ++src) {
      link_scratch_[static_cast<size_t>(topo.NodeOf(src))] +=
          routed_.dispatch(src, g);
    }
  }
  int64_t cross = 0;
  const size_t row = static_cast<size_t>(g) * static_cast<size_t>(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (n == node) continue;
    const int64_t v = link_scratch_[static_cast<size_t>(n)];
    cross += v;
    link_load_[static_cast<size_t>(n) * num_nodes + node] +=
        v - gpu_link_in_[row + static_cast<size_t>(n)];
    gpu_link_in_[row + static_cast<size_t>(n)] = v;
  }
  node_inflow_[static_cast<size_t>(node)] +=
      cross - cross_in_[static_cast<size_t>(g)];
  cross_in_[static_cast<size_t>(g)] = cross;

  gpu_tokens_[static_cast<size_t>(g)] = tokens_total;
  per_gpu_compute_[static_cast<size_t>(g)] = compute;
  per_gpu_a2a_[static_cast<size_t>(g)] = a2a;
  per_gpu_sync_[static_cast<size_t>(g)] = sync;
  const double total = cost_model_->CombineGpuSeconds(compute, a2a, sync);
  per_gpu_total_[static_cast<size_t>(g)] = total;

  size_t i = static_cast<size_t>(tourney_cap_ + g);
  tourney_[i] = total;
  for (i >>= 1; i >= 1; i >>= 1) {
    tourney_[i] = std::max(tourney_[2 * i], tourney_[2 * i + 1]);
  }
}

void LayerCostState::AddReplica(int expert, GpuId gpu) {
  if (placement_->VExpertsOn(expert, gpu) == 0) {
    gpu_experts_[static_cast<size_t>(gpu)].insert(expert);
  }
  FLEXMOE_CHECK_OK(placement_->AddVExpert(expert, gpu));
}

void LayerCostState::RemoveReplica(int expert, GpuId gpu) {
  FLEXMOE_CHECK_OK(placement_->RemoveVExpert(expert, gpu));
  if (placement_->VExpertsOn(expert, gpu) == 0) {
    gpu_experts_[static_cast<size_t>(gpu)].erase(expert);
  }
}

void LayerCostState::MarkHosts(int expert) {
  for (const auto& [gpu, count] : placement_->Replicas(expert)) {
    if (!affected_mark_[static_cast<size_t>(gpu)]) {
      affected_mark_[static_cast<size_t>(gpu)] = 1;
      affected_.push_back(gpu);
    }
  }
}

void LayerCostState::MarkGpu(GpuId gpu) {
  if (gpu < 0 || gpu >= placement_->num_gpus()) return;
  if (!affected_mark_[static_cast<size_t>(gpu)]) {
    affected_mark_[static_cast<size_t>(gpu)] = 1;
    affected_.push_back(gpu);
  }
}

ModOp LayerCostState::InverseOf(const ModOp& op) {
  switch (op.type) {
    case ModOpType::kShrink:
      // copy_from = -1: the undo re-adds capacity, provenance is moot.
      return MakeExpand(op.expert, /*copy_from=*/-1, /*dst=*/op.src);
    case ModOpType::kExpand:
      return MakeShrink(op.expert, op.dst);
    case ModOpType::kMigrate:
      return MakeMigrate(op.expert, op.dst, op.partner_expert, op.src);
  }
  FLEXMOE_CHECK(false);
  return op;
}

bool LayerCostState::CheckFeasible(const ModOp& op) const {
  const Placement& p = *placement_;
  const int num_experts = p.num_experts();
  const int num_gpus = p.num_gpus();
  if (op.expert < 0 || op.expert >= num_experts) return false;

  // Feasibility prechecks mirror primitives::ApplyOp (including the
  // ordered Remove/Remove/Add/Add semantics of Migrate), so Apply
  // succeeds exactly when ApplyOp on the same placement would.
  switch (op.type) {
    case ModOpType::kShrink:
      if (op.src < 0 || op.src >= num_gpus) return false;
      if (p.VExpertsOn(op.expert, op.src) == 0) return false;
      if (p.VExperts(op.expert) < 2) return false;
      break;
    case ModOpType::kExpand:
      if (op.dst < 0 || op.dst >= num_gpus) return false;
      if (op.src >= num_gpus) return false;
      if (op.src >= 0 && p.VExpertsOn(op.expert, op.src) == 0) return false;
      if (p.FreeSlots(op.dst) <= 0) return false;
      break;
    case ModOpType::kMigrate: {
      if (op.partner_expert < 0 || op.partner_expert >= num_experts) {
        return false;
      }
      if (op.src < 0 || op.src >= num_gpus) return false;
      if (op.dst < 0 || op.dst >= num_gpus) return false;
      if (op.src == op.dst) return false;
      if (p.VExpertsOn(op.expert, op.src) == 0) return false;
      if (p.VExpertsOn(op.partner_expert, op.dst) == 0) return false;
      if (p.VExperts(op.expert) < 2) return false;
      const int partner_after =
          p.VExperts(op.partner_expert) -
          (op.partner_expert == op.expert ? 1 : 0);
      if (partner_after < 2) return false;
      break;
    }
  }
  return true;
}

void LayerCostState::MutatePlacement(const ModOp& op) {
  switch (op.type) {
    case ModOpType::kShrink:
      RemoveReplica(op.expert, op.src);
      break;
    case ModOpType::kExpand:
      AddReplica(op.expert, op.dst);
      break;
    case ModOpType::kMigrate:
      RemoveReplica(op.expert, op.src);
      RemoveReplica(op.partner_expert, op.dst);
      AddReplica(op.expert, op.dst);
      AddReplica(op.partner_expert, op.src);
      break;
  }
}

void LayerCostState::SaveRow(std::vector<RowSnapshot>* rows, int* n, int key,
                             const int64_t* src, int len) {
  if (static_cast<int>(rows->size()) <= *n) {
    rows->resize(static_cast<size_t>(*n) + 1);
  }
  RowSnapshot& slot = (*rows)[static_cast<size_t>(*n)];
  slot.key = key;
  slot.data.assign(src, src + len);  // reuses the slot's capacity
  ++*n;
}

bool LayerCostState::Apply(const ModOp& op) {
  FLEXMOE_CHECK(initialized());
  if (!CheckFeasible(op)) return false;
  Placement& p = *placement_;

  const int e1 = op.expert;
  const int e2 =
      op.type == ModOpType::kMigrate && op.partner_expert != op.expert
          ? op.partner_expert
          : -1;

  // Affected GPUs: hosts of every touched expert before the op, plus the
  // op's endpoints — together exactly the hosts before AND after
  // (dispatch rows — and hence A2A terms — change only for those
  // destinations; tokens land only on hosts). Expand's dst is the only
  // possible new host; every other endpoint is already a host.
  affected_.clear();
  MarkHosts(e1);
  if (e2 >= 0) MarkHosts(e2);
  MarkGpu(op.src);
  MarkGpu(op.dst);

  // Snapshot the pre-op integer rows so Undo is a restore, not a second
  // pair of routing walks.
  const int num_gpus = p.num_gpus();
  if (static_cast<int>(undo_records_.size()) <= depth_) {
    undo_records_.resize(static_cast<size_t>(depth_) + 1);
  }
  UndoRecord& rec = undo_records_[static_cast<size_t>(depth_)];
  rec.op = op;
  rec.num_expert_rows = 0;
  rec.num_dispatch_rows = 0;
  rec.num_node_rows = 0;
  SaveRow(&rec.expert_rows, &rec.num_expert_rows, e1,
          routed_.expert_gpu_tokens.row(e1), num_gpus);
  if (e2 >= 0) {
    SaveRow(&rec.expert_rows, &rec.num_expert_rows, e2,
            routed_.expert_gpu_tokens.row(e2), num_gpus);
  }
  const bool aggregated = !routed_.node_of.empty();
  for (const GpuId g : affected_) {
    SaveRow(&rec.dispatch_rows, &rec.num_dispatch_rows, g,
            routed_.dispatch_to.row(g), num_gpus);
    if (aggregated) {
      SaveRow(&rec.node_rows, &rec.num_node_rows, g,
              routed_.node_dispatch_to.row(g), routed_.num_nodes);
    }
  }

  // Retract the touched experts' routing under the current placement
  // (exact integer cancellation), mutate, re-add under the new placement.
  FlexibleRouter::AccumulateExpert(*assignment_, p, e1, -1, &routed_);
  if (e2 >= 0) {
    FlexibleRouter::AccumulateExpert(*assignment_, p, e2, -1, &routed_);
  }

  MutatePlacement(op);

  FlexibleRouter::AccumulateExpert(*assignment_, p, e1, +1, &routed_);
  if (e2 >= 0) {
    FlexibleRouter::AccumulateExpert(*assignment_, p, e2, +1, &routed_);
  }

  RefreshExpert(e1);
  if (e2 >= 0) RefreshExpert(e2);

  for (const GpuId g : affected_) {
    affected_mark_[static_cast<size_t>(g)] = 0;
    RefreshGpu(g);
  }
  affected_.clear();
  ++depth_;
  return true;
}

void LayerCostState::Undo() {
  FLEXMOE_CHECK(depth_ > 0);
  const UndoRecord& rec = undo_records_[static_cast<size_t>(--depth_)];

  // Restore the saved integer rows; every other integer is untouched by
  // the op. Floats are recomputed below — they are pure functions of the
  // integers, so this restores the pre-Apply state bitwise.
  for (int i = 0; i < rec.num_expert_rows; ++i) {
    const RowSnapshot& s = rec.expert_rows[static_cast<size_t>(i)];
    std::copy(s.data.begin(), s.data.end(),
              routed_.expert_gpu_tokens.row(s.key));
  }
  for (int i = 0; i < rec.num_dispatch_rows; ++i) {
    const RowSnapshot& s = rec.dispatch_rows[static_cast<size_t>(i)];
    std::copy(s.data.begin(), s.data.end(), routed_.dispatch_to.row(s.key));
  }
  for (int i = 0; i < rec.num_node_rows; ++i) {
    const RowSnapshot& s = rec.node_rows[static_cast<size_t>(i)];
    std::copy(s.data.begin(), s.data.end(),
              routed_.node_dispatch_to.row(s.key));
  }

  MutatePlacement(InverseOf(rec.op));

  const int e1 = rec.op.expert;
  const int e2 = rec.op.type == ModOpType::kMigrate &&
                         rec.op.partner_expert != rec.op.expert
                     ? rec.op.partner_expert
                     : -1;
  RefreshExpert(e1);
  if (e2 >= 0) RefreshExpert(e2);
  for (int i = 0; i < rec.num_dispatch_rows; ++i) {
    RefreshGpu(rec.dispatch_rows[static_cast<size_t>(i)].key);
  }
}

LayerCostEstimate LayerCostState::ToEstimate() const {
  FLEXMOE_CHECK(initialized());
  LayerCostEstimate est;
  est.per_gpu_seconds = per_gpu_total_;
  est.per_gpu_compute = per_gpu_compute_;
  est.per_gpu_a2a = per_gpu_a2a_;
  est.per_gpu_sync = per_gpu_sync_;
  est.total_seconds = TotalSeconds();
  return est;
}

}  // namespace flexmoe
