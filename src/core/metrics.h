// Per-step and aggregated training metrics: the quantities behind the
// paper's evaluation figures — step time and its compute/A2A/sync
// decomposition, balance ratio, GPU utilization (Fig. 2), token efficiency
// and expert efficiency (Fig. 7a), and throughput (Fig. 7b).

#ifndef FLEXMOE_CORE_METRICS_H_
#define FLEXMOE_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace flexmoe {

/// \brief Metrics of one executed training step.
struct StepMetrics {
  int64_t step = 0;
  double step_seconds = 0.0;

  /// Phase decomposition (seconds on the critical path).
  double a2a_seconds = 0.0;
  double compute_seconds = 0.0;
  double sync_seconds = 0.0;
  double non_moe_seconds = 0.0;
  double adjust_block_seconds = 0.0;  ///< blocking adjustments only

  /// Mean balance ratio over the step's MoE layers (Eq. 6).
  double balance_ratio = 1.0;

  /// Fraction of token-assignments processed by their gate-chosen experts.
  double token_efficiency = 1.0;

  /// Meaningful-computation fraction: mean expert-compute time across GPUs
  /// divided by the max (1.0 = perfectly even expert work).
  double expert_efficiency = 1.0;

  /// Expert-compute busy time / (GPUs x step time), Fig. 2's utilization.
  double gpu_utilization = 0.0;

  int64_t tokens_total = 0;    ///< token-assignments this step
  int64_t tokens_dropped = 0;  ///< dropped by capacity or lost to faults
  /// Serving only: token-assignments a static layout could not place in
  /// the main pass (capacity overflow, SWIPE re-routes) and re-executed in
  /// a recirculation pass — latency cost instead of quality loss.
  int64_t tokens_recirculated = 0;
  int ops_applied = 0;         ///< placement modifications taking effect
  int ops_launched = 0;

  // --- Elastic-cluster metrics (zero on a static, healthy cluster) -------

  /// Blocking fault-handling time on the critical path this step (restart
  /// penalties, checkpoint reads, emergency drains).
  double recovery_seconds = 0.0;
  /// Cluster events (fail-stop / slowdown / recover / join / leave)
  /// applied at this step's boundary.
  int faults_applied = 0;
  /// True when some expert had no replica on a live device this step.
  bool degraded = false;
};

/// \brief Fills the timing/efficiency fields of a StepMetrics from an
/// executed step (shared by FlexMoE and all baseline systems).
/// `per_gpu_expert_compute` drives expert efficiency and GPU utilization;
/// `non_moe_seconds` counts toward utilization as useful work.
/// `num_alive_gpus` (0 = all) is the efficiency denominator, so a
/// rebalanced degraded cluster can still read as 100% efficient —
/// departed devices are lost capacity, not inefficiency.
StepMetrics MetricsFromTiming(int64_t step, double step_seconds,
                              double a2a_seconds, double compute_seconds,
                              double sync_seconds, double non_moe_seconds,
                              const std::vector<double>& per_gpu_expert_compute,
                              double balance_ratio, double token_efficiency,
                              int64_t tokens_total, int64_t tokens_dropped,
                              int num_alive_gpus = 0);

/// \brief Accumulates StepMetrics over a run.
class TrainingStats {
 public:
  void Add(const StepMetrics& m);

  const std::vector<StepMetrics>& steps() const { return steps_; }
  int64_t num_steps() const { return static_cast<int64_t>(steps_.size()); }

  /// Aggregates over steps [warmup, end).
  double MeanStepSeconds(int warmup = 0) const;
  double MeanBalanceRatio(int warmup = 0) const;
  double MeanTokenEfficiency(int warmup = 0) const;
  double MeanExpertEfficiency(int warmup = 0) const;
  double MeanGpuUtilization(int warmup = 0) const;
  double TotalSeconds() const;
  int64_t TotalOpsApplied() const;
  int64_t TotalTokensDropped() const;
  double TotalRecoverySeconds() const;
  int64_t TotalFaultsApplied() const;
  int64_t DegradedSteps() const;

  /// Tokens (not token-assignments) per second of wall-clock, given tokens
  /// per step.
  double Throughput(double tokens_per_step, int warmup = 0) const;

  std::string Summary() const;

 private:
  template <typename F>
  double MeanOver(int warmup, F&& get) const;

  std::vector<StepMetrics> steps_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_METRICS_H_
