// MoESystem: the common interface every training system in the comparison
// implements (FlexMoE and the DeepSpeed / FasterMoE / SWIPE baselines).
// A system owns its simulated cluster and consumes per-step, per-layer
// routing assignments produced by a shared TraceGenerator, so all systems
// in an experiment see the identical token stream.

#ifndef FLEXMOE_CORE_SYSTEM_H_
#define FLEXMOE_CORE_SYSTEM_H_

#include <string>
#include <vector>

#include "core/metrics.h"
#include "elastic/cluster_health.h"
#include "elastic/fault_plan.h"
#include "moe/moe_layer.h"
#include "sim/stream.h"

namespace flexmoe {

namespace obs {
class Observability;
}  // namespace obs

/// \brief Abstract distributed MoE training system.
class MoESystem {
 public:
  virtual ~MoESystem() = default;

  /// Human-readable system name ("FlexMoE", "DeepSpeed", ...).
  virtual std::string name() const = 0;

  /// Executes one training step for the given per-MoE-layer assignments
  /// and returns its metrics. Implementations advance their simulated
  /// cluster clock internally.
  virtual StepMetrics RunStep(
      const std::vector<Assignment>& layer_assignments) = 0;

  /// Executes one serving microbatch: a forward-only pass over the given
  /// per-layer assignments (no backward, no gradient sync, no optimizer).
  /// Serving never degrades a response — tokens a static layout would drop
  /// (capacity) or re-route (SWIPE) recirculate through a second forward
  /// pass instead, which `tokens_recirculated` counts; `tokens_dropped`
  /// counts only tokens lost to a fault mid-batch (the ServeExecutor
  /// retries the whole batch when that happens). Returned step_seconds is
  /// the microbatch's answer latency.
  virtual StepMetrics ServeMicrobatch(
      const std::vector<Assignment>& layer_assignments) = 0;

  /// All metrics recorded so far.
  virtual const TrainingStats& stats() const = 0;

  /// The simulated cluster (stream utilization introspection).
  virtual const ClusterState& cluster() const = 0;

  /// Arms the system with a schedule of cluster events (fail-stop,
  /// straggler, join/leave) applied at step boundaries. Every system in
  /// the comparison supports this so fault scenarios run apples-to-apples.
  virtual Status InstallFaultPlan(const FaultPlan& plan) {
    (void)plan;
    return Status::Unimplemented("fault injection not supported");
  }

  /// The dynamic-membership view, or nullptr when fault injection was
  /// never installed.
  virtual const ClusterHealth* cluster_health() const { return nullptr; }

  /// Installs the per-run observability handle (nullable; default: none).
  /// `obs` must outlive the system. Systems forward it to their executors
  /// and elastic controller; a disabled or null handle costs one branch
  /// per instrumented phase (DESIGN.md Section 9).
  virtual void SetObservability(obs::Observability* obs) { (void)obs; }
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_SYSTEM_H_
