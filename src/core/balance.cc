#include "core/balance.h"

#include <algorithm>
#include <cmath>

namespace flexmoe {

double BalanceRatio(const std::vector<double>& per_gpu_loads) {
  if (per_gpu_loads.empty()) return 1.0;
  double max = 0.0, sum = 0.0;
  for (double v : per_gpu_loads) {
    max = std::max(max, v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(per_gpu_loads.size());
  if (mean <= 0.0) return 1.0;
  return max / mean;
}

double BalanceVariance(const std::vector<double>& per_gpu_loads) {
  if (per_gpu_loads.empty()) return 0.0;
  double sum = 0.0;
  for (double v : per_gpu_loads) sum += v;
  const double mean = sum / static_cast<double>(per_gpu_loads.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (double v : per_gpu_loads) var += (v - mean) * (v - mean);
  var /= static_cast<double>(per_gpu_loads.size());
  return std::sqrt(var) / mean;
}

double BalanceRatioOf(const Assignment& assignment,
                      const Placement& placement) {
  const RoutedAssignment routed = FlexibleRouter::Route(assignment, placement);
  return BalanceRatio(routed.PerGpuComputeLoads());
}

}  // namespace flexmoe
