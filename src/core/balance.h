// Balance metrics (paper Eq. 6 and the Variance alternative of Fig. 6a).
//
// The balance ratio is max-GPU-load / mean-GPU-load: >= 1 always, == 1 iff
// perfectly balanced. Because the synchronous MoE layer finishes with its
// slowest GPU, the ratio directly upper-bounds attainable GPU utilization
// (utilization ~= 1 / balance_ratio).

#ifndef FLEXMOE_CORE_BALANCE_H_
#define FLEXMOE_CORE_BALANCE_H_

#include <vector>

#include "core/router.h"

namespace flexmoe {

/// \brief Paper Eq. 6: max_g(load_g) / mean_g(load_g). Returns 1 for empty
/// or all-zero loads.
double BalanceRatio(const std::vector<double>& per_gpu_loads);

/// \brief The Variance alternative studied in Fig. 6a, reported as the
/// coefficient of variation (stddev/mean) so that thresholds are
/// dimensionless and workload-size independent.
double BalanceVariance(const std::vector<double>& per_gpu_loads);

/// \brief Routes `assignment` under `placement` and returns Eq. 6 on the
/// resulting per-GPU compute loads.
double BalanceRatioOf(const Assignment& assignment,
                      const Placement& placement);

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_BALANCE_H_
