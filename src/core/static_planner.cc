#include "core/static_planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flexmoe {

Status StaticPlannerOptions::Validate() const {
  return placement.Validate();
}

std::vector<int> ApportionVExperts(const std::vector<double>& expected_loads,
                                   int total_slots) {
  const int n = static_cast<int>(expected_loads.size());
  FLEXMOE_CHECK(n > 0);
  FLEXMOE_CHECK_MSG(total_slots >= n,
                    "need at least one slot per expert");
  double total_load = 0.0;
  for (double v : expected_loads) {
    FLEXMOE_CHECK(v >= 0.0);
    total_load += v;
  }

  std::vector<int> counts(static_cast<size_t>(n), 1);  // floor of 1 each
  int remaining = total_slots - n;
  if (total_load <= 0.0 || remaining <= 0) return counts;

  // Largest-remainder apportionment of the remaining slots.
  std::vector<double> exact(static_cast<size_t>(n));
  std::vector<std::pair<double, int>> remainders;
  int assigned = 0;
  for (int e = 0; e < n; ++e) {
    exact[static_cast<size_t>(e)] =
        expected_loads[static_cast<size_t>(e)] / total_load * remaining;
    const int base = static_cast<int>(std::floor(exact[static_cast<size_t>(e)]));
    counts[static_cast<size_t>(e)] += base;
    assigned += base;
    remainders.push_back(
        {exact[static_cast<size_t>(e)] - base, e});
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto& a,
                                                     const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (int i = 0; i < remaining - assigned; ++i) {
    ++counts[static_cast<size_t>(remainders[static_cast<size_t>(i)].second)];
  }
  return counts;
}

Result<Placement> PlanStaticPlacement(
    const std::vector<double>& expected_loads, const Topology& topo,
    const StaticPlannerOptions& options) {
  FLEXMOE_RETURN_IF_ERROR(options.Validate());
  const PlacementOptions& popt = options.placement;
  if (static_cast<int>(expected_loads.size()) != popt.num_experts) {
    return Status::InvalidArgument("expected_loads size != num_experts");
  }
  if (topo.num_gpus() != popt.num_gpus) {
    return Status::InvalidArgument("topology GPU count mismatch");
  }

  const int slots = popt.EffectiveSlotsPerGpu();
  const std::vector<int> counts =
      ApportionVExperts(expected_loads, popt.num_gpus * slots);

  // Per-vExpert weight of each expert (even token split across replicas).
  double total_load = std::accumulate(expected_loads.begin(),
                                      expected_loads.end(), 0.0);
  if (total_load <= 0.0) total_load = 1.0;

  // LPT bin packing: place the heaviest experts' vExpert bundles first,
  // each vExpert going to the currently lightest GPU with a free slot —
  // preferring GPUs on nodes that already host the expert (cheap sync).
  // Start from an empty placement built via the mutation API.
  FLEXMOE_ASSIGN_OR_RETURN(Placement p, Placement::ExpertParallel(popt));
  // Clear the canonical start down to one vExpert per expert so that the
  // planner's assignment dominates.
  for (int e = 0; e < popt.num_experts; ++e) {
    const std::vector<GpuId> hosts = p.HostGpus(e);
    for (GpuId g : hosts) {
      while (p.VExperts(e) > 1 && p.VExpertsOn(e, g) > 0) {
        FLEXMOE_RETURN_IF_ERROR(p.RemoveVExpert(e, g));
      }
    }
  }

  std::vector<int> order(static_cast<size_t>(popt.num_experts));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return expected_loads[static_cast<size_t>(a)] >
           expected_loads[static_cast<size_t>(b)];
  });

  std::vector<double> gpu_weight(static_cast<size_t>(popt.num_gpus), 0.0);
  for (int e = 0; e < popt.num_experts; ++e) {
    // Account for the single anchor vExpert every expert already holds.
    const GpuId anchor = p.HostGpus(e).front();
    gpu_weight[static_cast<size_t>(anchor)] +=
        expected_loads[static_cast<size_t>(e)] /
        static_cast<double>(counts[static_cast<size_t>(e)]);
  }

  for (int e : order) {
    const double per_vexpert =
        expected_loads[static_cast<size_t>(e)] /
        static_cast<double>(counts[static_cast<size_t>(e)]);
    for (int k = 1; k < counts[static_cast<size_t>(e)]; ++k) {
      GpuId best = -1;
      bool best_affine = false;
      for (GpuId g = 0; g < popt.num_gpus; ++g) {
        if (p.FreeSlots(g) <= 0) continue;
        bool affine = false;
        if (options.node_affine) {
          for (GpuId h : p.HostGpus(e)) {
            if (topo.SameNode(h, g)) {
              affine = true;
              break;
            }
          }
        }
        if (best < 0 ||
            (affine && !best_affine) ||
            (affine == best_affine &&
             gpu_weight[static_cast<size_t>(g)] <
                 gpu_weight[static_cast<size_t>(best)])) {
          best = g;
          best_affine = affine;
        }
      }
      if (best < 0) {
        return Status::ResourceExhausted("ran out of vExpert slots");
      }
      FLEXMOE_RETURN_IF_ERROR(p.AddVExpert(e, best));
      gpu_weight[static_cast<size_t>(best)] += per_vexpert;
    }
  }
  FLEXMOE_RETURN_IF_ERROR(p.Validate());
  return p;
}

Result<Placement> PlanFromTrace(const RoutingTrace& trace, int layer,
                                const Topology& topo,
                                const StaticPlannerOptions& options) {
  if (trace.num_steps() == 0) {
    return Status::InvalidArgument("empty trace");
  }
  if (layer < 0 || layer >= trace.num_layers()) {
    return Status::InvalidArgument("layer out of range");
  }
  std::vector<double> mean_loads(
      static_cast<size_t>(trace.at(0, layer).num_experts()), 0.0);
  for (int s = 0; s < trace.num_steps(); ++s) {
    const std::vector<double> loads = trace.at(s, layer).ExpertLoads();
    for (size_t e = 0; e < loads.size(); ++e) mean_loads[e] += loads[e];
  }
  for (double& v : mean_loads) v /= trace.num_steps();
  return PlanStaticPlacement(mean_loads, topo, options);
}

}  // namespace flexmoe
