// Policy Maker (paper Algorithm 2): cost-model-driven greedy planning.
//
// Each call inspects the current workload I and placement P, finds the
// expert with the maximum per-vExpert capacity (hottest) and the one with
// the minimum (coldest), simulates Expand(hot) + Shrink(cold), and returns
// the pair iff the estimated layer time strictly improves. The Scheduler
// calls this in a loop until no beneficial modification remains.
//
// Beyond the paper's pseudocode, two concrete decisions are needed and are
// made here:
//  * which replica of the cold expert to shrink — the one on the most
//    loaded GPU (relieves the bottleneck), preferring replica-group
//    shrinkage ties;
//  * which GPU receives the hot expert's new vExpert — every GPU with a
//    free slot is evaluated through the cost model and the best one wins
//    (GPUs already hosting the expert cost nothing to expand onto).

#ifndef FLEXMOE_CORE_POLICY_MAKER_H_
#define FLEXMOE_CORE_POLICY_MAKER_H_

#include <vector>

#include "core/cost_model.h"
#include "core/incremental_cost.h"
#include "elastic/cluster_health.h"
#include "placement/primitives.h"

namespace flexmoe {

/// \brief Planner configuration.
struct PolicyMakerOptions {
  /// Accept a plan only if t1 < t0 * (1 - min_improvement_frac); guards
  /// against expand/shrink oscillation on estimation noise.
  double min_improvement_frac = 0.005;
  /// Upper bound on expand-destination candidates evaluated per plan
  /// (<= 0 evaluates all GPUs with free slots). Bounded by default: each
  /// candidate costs a full routing + Eq. 5 evaluation.
  int max_expand_candidates = 4;
  /// Experts considered for expansion per plan, hottest first. Evaluating
  /// a few near-ties instead of only the argmax (the paper's literal
  /// Alg. 2) prevents stalls when two hot experts bottleneck different
  /// GPUs.
  int max_hot_candidates = 3;
  /// Improvement (seconds) a migration must deliver to be emitted.
  double min_migration_gain_sec = 1e-5;

  /// Serving objective (DESIGN.md Section 8): optimize the forward
  /// latency of a microbatch instead of the training step time. With no
  /// gradients to synchronize, the Eq. 9 replica-sync term disappears
  /// from the Eq. 5 estimate, so replicating a hot expert costs only its
  /// one-time transfer — the planner chases p99 latency / SLO attainment
  /// by spreading hot experts far more aggressively than it would when
  /// every replica keeps paying sync.
  bool serve_objective = false;

  /// Topology-aware expand-destination ordering (DESIGN.md Section 10):
  /// among equally node-local candidates, prefer destinations on the node
  /// with the lowest cross-node token inflow — minimizing the max
  /// cross-link load instead of only the per-GPU compute load
  /// (SNIPPETS.md Snippets 2-3). Off by default: candidate ordering (and
  /// therefore the emitted plans) stays byte-identical to the pre-
  /// hierarchical planner.
  bool topology_aware_expansion = false;

  /// Score expand destinations by the max per-cross-link token load
  /// (LayerCostState::max_cross_link_into) ahead of the aggregate
  /// cross-node inflow: one saturated inter-node link bounds the A2A
  /// phase even when the node's total inflow looks moderate, so among
  /// node-local ties the planner lands replicas where the heaviest single
  /// link has headroom. Only meaningful with topology_aware_expansion;
  /// off by default so candidate ordering — and the emitted plans — stay
  /// byte-identical.
  bool max_link_objective = false;

  Status Validate() const;
};

/// \brief What one MakeSchedulingPlan search did — the audit trail behind
/// a policy decision (DESIGN.md Section 9).
struct PlanSearchStats {
  /// Candidate placements scored through the cost model (Eq. 5).
  int64_t candidates_evaluated = 0;
  /// 8-norm plan score of the incumbent placement.
  double score_before = 0.0;
  /// Best candidate score found (== score_before when nothing was scored).
  double best_score = 0.0;
  /// True iff the returned plan is non-empty (the best candidate cleared
  /// the min_improvement_frac threshold).
  bool accepted = false;
};

/// \brief Implements Algorithm 2 plus background migration planning.
class PolicyMaker {
 public:
  PolicyMaker(const CostModel* cost_model, const PolicyMakerOptions& options);

  /// Installs the dynamic-membership view (nullable). With health set, the
  /// planner never expands or migrates onto dead or degraded devices, and
  /// prefers shrinking replicas that sit on degraded devices.
  void SetClusterHealth(const ClusterHealth* health) { health_ = health; }

  /// One Expand/Shrink round (Algorithm 2). Returns ops in dependency order
  /// (Shrink first when it frees the slot the Expand consumes); empty if no
  /// beneficial modification exists. `stats` (nullable) receives the
  /// search's audit record. Resets the planner's private LayerCostState
  /// and delegates to PlanOnState.
  std::vector<ModOp> MakeSchedulingPlan(const Assignment& assignment,
                                        const Placement& placement,
                                        PlanSearchStats* stats = nullptr) const;

  /// MakeSchedulingPlan against an already-initialized incremental state —
  /// the O(Δ) path. The caller owns `state` and keeps it live across plan
  /// rounds by Apply-ing the accepted ops (see Scheduler::OnStep); the
  /// search itself returns the state at its entry depth. `state` must have
  /// been constructed with include_sync matching this planner's objective.
  std::vector<ModOp> PlanOnState(LayerCostState* state,
                                 PlanSearchStats* stats = nullptr) const;

  /// Background migration planning (Algorithm 1 line 9): up to `max_moves`
  /// vExpert swaps that lower the total estimated synchronization cost by
  /// consolidating replica groups onto fewer nodes.
  std::vector<ModOp> PlanMigrations(const Placement& placement,
                                    int max_moves) const;

  /// Migrate-away planning: up to `max_moves` ops that move vExpert
  /// capacity off degraded (straggler) devices — Shrinks when the expert
  /// holds capacity elsewhere, an Expand onto a healthy device when the
  /// straggler hosts the sole replica (the matching Shrink follows on a
  /// later trigger, once the copy is live). Empty without health or when
  /// nothing is degraded.
  std::vector<ModOp> PlanEvacuation(const Placement& placement,
                                    int max_moves) const;

  /// Total Eq. 9 sync seconds across all experts (migration objective).
  double TotalSyncSeconds(const Placement& placement) const;

  const CostModel* cost_model() const { return cost_model_; }
  const PolicyMakerOptions& options() const { return options_; }

 private:
  /// True when `g` may receive new vExperts.
  bool Expandable(GpuId g) const;

  const CostModel* cost_model_;
  PolicyMakerOptions options_;
  const ClusterHealth* health_ = nullptr;
  /// Scratch state backing the convenience MakeSchedulingPlan overload
  /// (reused across calls so steady-state planning reuses allocations).
  mutable LayerCostState scratch_state_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_POLICY_MAKER_H_
