// Incremental Eq. 5 cost maintenance (DESIGN.md Section 10).
//
// The Policy Maker's candidate search evaluates placements that differ from
// the incumbent by one ModOp — one or two experts move. A from-scratch
// Eq. 5 evaluation pays O(E*G + G^2) per candidate; LayerCostState caches
// the per-GPU compute / All-to-All / sync partial sums and the routed token
// matrix, and re-derives only the GPUs an op actually touches, so a
// candidate costs O(|affected GPUs| * G) integer work plus an O(log G)
// tournament update for the outer max. At the large-EP scale the ROADMAP
// targets (G = E = 512-1024, one expert per GPU) an op touches a handful of
// GPUs and candidate scoring drops from milliseconds to microseconds.
//
// Exactness argument (the PR 2 precedent, extended):
//  * Routing deltas are integer: FlexibleRouter::AccumulateExpert(+1/-1)
//    cancels exactly, so the cached token matrices equal a from-scratch
//    Route of the current placement bitwise at every depth.
//  * Per-GPU float sums are never delta-adjusted (FP addition is order-
//    dependent and not reversible). An affected GPU's compute/a2a/sync
//    terms are recomputed from scratch in the same canonical ascending-
//    expert / ascending-source order CostModel::EstimateLayer uses, from
//    bitwise-identical integer inputs — hence bitwise-identical sums.
//  * max is associative and commutative for non-NaN doubles, so the
//    tournament root equals std::max_element over the per-GPU totals.
//  * Undo restores the op's saved integer rows (expert token rows plus the
//    affected destinations' dispatch/node-dispatch rows) and re-applies the
//    inverse placement mutation, then recomputes the affected floats;
//    because every cached float is a pure function of the (restored)
//    integer state, undo restores the initial state bitwise — without
//    paying the two routing walks a re-derivation would cost.
//
// The invariants are pinned by tests/incremental_cost_test.cc (randomized
// Apply/Undo sequences vs from-scratch EstimateLayer, exact comparison).

#ifndef FLEXMOE_CORE_INCREMENTAL_COST_H_
#define FLEXMOE_CORE_INCREMENTAL_COST_H_

#include <optional>
#include <set>
#include <vector>

#include "core/cost_model.h"
#include "placement/primitives.h"

namespace flexmoe {

/// \brief Search score for a candidate placement: the 8-norm of per-GPU
/// layer times. It upper-bounds and closely tracks the Eq. 5 max, but
/// unlike the bare max it strictly rewards relieving ANY heavily loaded
/// GPU (see PolicyMaker). Always evaluated left-to-right over all GPUs —
/// the sum is order-dependent in FP, so it is deliberately not maintained
/// incrementally; at 4 flops per GPU it is never the bottleneck.
double Score8Norm(const std::vector<double>& per_gpu_seconds);

/// \brief Cached Eq. 5 state for one (assignment, placement) pair with
/// O(Δ)-cost ApplyOp / Undo.
///
/// The state owns a private Placement copy that it mutates in lock-step
/// with the op stack; the Assignment is borrowed and must outlive every
/// use between Reset calls. Not thread-safe; one instance per search loop
/// (the scratch-ownership rules of DESIGN.md "Performance architecture").
class LayerCostState {
 public:
  /// `include_sync` = false drops the Eq. 9 replica-sync term — the
  /// serving objective (PolicyMakerOptions::serve_objective).
  LayerCostState(const CostModel* cost_model, bool include_sync);

  /// Full canonical rebuild against a new workload/placement. O(E*G + G^2).
  void Reset(const Assignment& assignment, const Placement& placement);
  bool initialized() const { return assignment_ != nullptr; }
  bool include_sync() const { return include_sync_; }

  /// Applies `op` if it is feasible on the current placement (the same
  /// preconditions primitives::ApplyOp enforces); returns false and leaves
  /// the state untouched otherwise. O(|affected GPUs| * G).
  bool Apply(const ModOp& op);

  /// Reverts the most recent successful Apply by restoring the integer
  /// rows it saved (no routing walk). Bitwise restoration.
  void Undo();

  /// Open (not yet undone) Apply count since the last Reset.
  int depth() const { return depth_; }

  // --- Queries (all O(1) unless noted) -----------------------------------

  /// Eq. 5 outer max over per-GPU totals (tournament root).
  double TotalSeconds() const { return tourney_[1]; }

  /// Score8Norm over the cached per-GPU totals. O(G).
  double Score() const { return Score8Norm(per_gpu_total_); }

  /// Materializes the cached state as a LayerCostEstimate (copies; use the
  /// accessors below on hot paths). O(G).
  LayerCostEstimate ToEstimate() const;

  const Assignment& assignment() const { return *assignment_; }
  const Placement& placement() const { return *placement_; }
  const RoutedAssignment& routed() const { return routed_; }

  const std::vector<double>& per_gpu_seconds() const { return per_gpu_total_; }

  /// Tokens of expert computation landing on each GPU (integer loads; ==
  /// routed().PerGpuComputeTokens() without the allocation).
  const std::vector<int64_t>& per_gpu_compute_tokens() const {
    return gpu_tokens_;
  }

  /// Per-vExpert capacity of each expert: I_e / n_e (Alg. 2 lines 3-5).
  const std::vector<double>& vexpert_capacities() const { return caps_; }

  /// Best pipeline chunk depth for this layer under the overhead-honest
  /// combiner, evaluated on the cached per-GPU compute/A2A/sync partial
  /// sums (O(G) per candidate over CostModel::kChunkDepthCandidates, no
  /// routing work). Selection is CostModel::BestChunkDepth's
  /// shallow-to-deep deepening ladder, and a non-zero `incumbent` engages
  /// its retention hysteresis (kChunkDepthSwitchMargin). The Scheduler
  /// publishes this as SchedulerDecision::pipeline_chunks on auto-K plans
  /// (DESIGN.md §12.2).
  int BestChunkDepth(int incumbent = 0) const {
    FLEXMOE_CHECK(initialized());
    return cost_model_->BestChunkDepth(per_gpu_compute_, per_gpu_a2a_,
                                       per_gpu_sync_, incumbent);
  }

  /// Tokens entering `node` from other nodes (sum of cross-node dispatch
  /// into the node's GPUs) — the cross-link load the topology-aware
  /// expand tie-break minimizes (SNIPPETS.md Snippets 2-3).
  int64_t cross_node_inflow(NodeId node) const {
    return node_inflow_[static_cast<size_t>(node)];
  }

  /// The heaviest single cross-node link into `node`: max over source
  /// nodes src != node of the tokens flowing src -> node. The aggregate
  /// inflow above can hide one saturated link behind several idle ones;
  /// this is the objective PolicyMakerOptions::max_link_objective adds.
  /// O(nodes).
  int64_t max_cross_link_into(NodeId node) const {
    const int num_nodes = static_cast<int>(node_inflow_.size());
    int64_t worst = 0;
    for (NodeId src = 0; src < num_nodes; ++src) {
      if (src == node) continue;
      worst = std::max(
          worst,
          link_load_[static_cast<size_t>(src) * num_nodes + node]);
    }
    return worst;
  }

 private:
  /// One saved integer row of the pre-op state, keyed by its expert / GPU
  /// index. Snapshot slots are pooled (capacity survives Undo/Reset), so
  /// steady-state Apply/Undo cycles are allocation-free.
  struct RowSnapshot {
    int key = -1;
    std::vector<int64_t> data;
  };

  /// Everything Undo needs to revert one Apply: the op (for the inverse
  /// placement mutation) plus every integer row the op can touch — the
  /// changed experts' token rows and the affected destinations'
  /// dispatch / node-dispatch rows. Floats are not saved; they are pure
  /// functions of the integers and get recomputed on restore.
  struct UndoRecord {
    ModOp op;
    int num_expert_rows = 0;
    int num_dispatch_rows = 0;
    int num_node_rows = 0;
    std::vector<RowSnapshot> expert_rows;
    std::vector<RowSnapshot> dispatch_rows;
    std::vector<RowSnapshot> node_rows;
  };

  /// The feasibility prechecks of primitives::ApplyOp, side-effect free.
  bool CheckFeasible(const ModOp& op) const;

  /// The placement half of an op (replica add/remove bookkeeping only).
  void MutatePlacement(const ModOp& op);

  /// The op that exactly reverts `op` on the post-op placement.
  static ModOp InverseOf(const ModOp& op);

  /// Placement mutators that keep the per-GPU hosted-expert sets in sync.
  void AddReplica(int expert, GpuId gpu);
  void RemoveReplica(int expert, GpuId gpu);

  /// Collects `expert`'s current host GPUs into the affected set.
  void MarkHosts(int expert);

  /// Adds one GPU to the affected set (no-op for out-of-range ids, so op
  /// endpoints can be marked unconditionally).
  void MarkGpu(GpuId gpu);

  /// Copies `len` elements of `src` into the next pooled snapshot slot of
  /// `rows`, bumping `*n`. Reuses slot capacity across Apply/Undo cycles.
  static void SaveRow(std::vector<RowSnapshot>* rows, int* n, int key,
                      const int64_t* src, int len);

  /// Refreshes caps_ / sync_of_expert_ for one touched expert.
  void RefreshExpert(int expert);

  /// Canonically recomputes one GPU's partial sums, token totals, and
  /// tournament leaf from the cached integer state. O(G).
  void RefreshGpu(GpuId g);

  const CostModel* cost_model_;
  bool include_sync_;

  const Assignment* assignment_ = nullptr;
  std::optional<Placement> placement_;
  RoutedAssignment routed_;

  // Per-GPU partial sums (Eq. 5 terms) and their integer sources.
  std::vector<double> per_gpu_compute_;
  std::vector<double> per_gpu_a2a_;
  std::vector<double> per_gpu_sync_;
  std::vector<double> per_gpu_total_;
  std::vector<int64_t> gpu_tokens_;

  // Per-expert caches refreshed only for touched experts.
  std::vector<double> sync_of_expert_;
  std::vector<double> caps_;

  /// Experts hosting >= 1 vExpert per GPU, ascending — the canonical
  /// iteration order of EstimateLayer restricted to terms that can be
  /// non-zero (tokens land only on hosts; sync accrues only on hosts).
  std::vector<std::set<int>> gpu_experts_;

  // Cross-node inbound token bookkeeping for the topology tie-break.
  std::vector<int64_t> cross_in_;     ///< per destination GPU
  std::vector<int64_t> node_inflow_;  ///< per destination node
  /// Inflow into each destination GPU split by source node (G x nodes,
  /// row-major) — the per-GPU terms behind link_load_, kept so RefreshGpu
  /// can delta-update link loads exactly (integer arithmetic cancels).
  std::vector<int64_t> gpu_link_in_;
  /// Tokens on each directed cross-node link (nodes x nodes, row-major:
  /// [src * nodes + dst_node]); diagonal unused.
  std::vector<int64_t> link_load_;
  /// Per-RefreshGpu scratch of per-source-node sums (non-aggregated path).
  std::vector<int64_t> link_scratch_;

  /// Flat binary tournament over per-GPU totals: leaves at
  /// [cap, cap + G) padded with -inf, root at index 1. A leaf update is
  /// O(log G); the root IS the Eq. 5 max (max is truly associative).
  std::vector<double> tourney_;
  int tourney_cap_ = 0;

  /// Undo stack with pooled snapshot storage: `depth_` records are live;
  /// slots beyond keep their row capacities for reuse.
  std::vector<UndoRecord> undo_records_;
  int depth_ = 0;

  // Scratch for the affected-GPU set (dedup via per-GPU marks).
  std::vector<GpuId> affected_;
  std::vector<char> affected_mark_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_INCREMENTAL_COST_H_
