// Static placement planning (the paper's future-work direction: placing
// experts from *predicted* loads instead of reacting online).
//
// Given expected per-expert loads — e.g. the historical mean from a
// recorded RoutingTrace, or profile statistics from a previous run — the
// planner allocates the G x E vExpert slots proportionally to load
// (largest-remainder apportionment, every expert >= 1 vExpert) and assigns
// the replicas to GPUs with a longest-processing-time bin packing that
// prefers node-local replica groups. FlexMoE can warm-start from this
// placement and converge in a handful of steps instead of tens.

#ifndef FLEXMOE_CORE_STATIC_PLANNER_H_
#define FLEXMOE_CORE_STATIC_PLANNER_H_

#include <vector>

#include "gate/routing_trace.h"
#include "placement/placement.h"
#include "topology/topology.h"

namespace flexmoe {

/// \brief Options for the static planner.
struct StaticPlannerOptions {
  PlacementOptions placement;
  /// Prefer placing an expert's replicas within as few nodes as possible
  /// (cheaper gradient AllReduce groups).
  bool node_affine = true;

  Status Validate() const;
};

/// \brief vExpert apportionment: splits the total slot budget across
/// experts proportionally to `expected_loads` (largest remainder), with
/// every expert receiving at least one vExpert. Exposed for testing.
std::vector<int> ApportionVExperts(const std::vector<double>& expected_loads,
                                   int total_slots);

/// \brief Builds a placement for the expected loads.
///
/// The returned placement is balanced in expectation: each GPU's share of
/// load-weighted vExperts is within one vExpert granule of the mean.
Result<Placement> PlanStaticPlacement(
    const std::vector<double>& expected_loads, const Topology& topo,
    const StaticPlannerOptions& options);

/// \brief Convenience: plans from the mean per-expert loads of a recorded
/// trace layer.
Result<Placement> PlanFromTrace(const RoutingTrace& trace, int layer,
                                const Topology& topo,
                                const StaticPlannerOptions& options);

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_STATIC_PLANNER_H_
