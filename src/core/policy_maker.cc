#include "core/policy_maker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/balance.h"

namespace flexmoe {

Status PolicyMakerOptions::Validate() const {
  if (min_improvement_frac < 0.0 || min_improvement_frac >= 1.0) {
    return Status::InvalidArgument("min_improvement_frac out of range");
  }
  if (min_migration_gain_sec < 0.0) {
    return Status::InvalidArgument("min_migration_gain_sec < 0");
  }
  if (max_hot_candidates < 1) {
    return Status::InvalidArgument("max_hot_candidates must be >= 1");
  }
  return Status::OK();
}

PolicyMaker::PolicyMaker(const CostModel* cost_model,
                         const PolicyMakerOptions& options)
    : cost_model_(cost_model),
      options_(options),
      scratch_state_(cost_model, /*include_sync=*/!options.serve_objective) {
  FLEXMOE_CHECK(cost_model != nullptr);
  FLEXMOE_CHECK_OK(options.Validate());
}

bool PolicyMaker::Expandable(GpuId g) const {
  return health_ == nullptr ||
         health_->state(g) == DeviceState::kHealthy;
}

std::vector<ModOp> PolicyMaker::MakeSchedulingPlan(
    const Assignment& assignment, const Placement& placement,
    PlanSearchStats* stats) const {
  scratch_state_.Reset(assignment, placement);
  return PlanOnState(&scratch_state_, stats);
}

std::vector<ModOp> PolicyMaker::PlanOnState(LayerCostState* state,
                                            PlanSearchStats* stats) const {
  PlanSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = PlanSearchStats();
  FLEXMOE_CHECK(state != nullptr && state->initialized());
  FLEXMOE_CHECK(state->include_sync() == !options_.serve_objective);
  const Assignment& assignment = state->assignment();
  // Mutated (and restored) by every Apply/Undo below — reads that must
  // see the incumbent placement happen only at entry depth.
  const Placement& placement = state->placement();
  const double score0 = state->Score();
  stats->score_before = score0;
  stats->best_score = score0;
  // Snapshots: Apply rewrites the state's caches in place, while the
  // candidate orderings below are defined against the incumbent.
  const std::vector<double> caps = state->vexpert_capacities();
  const std::vector<int64_t> gpu_loads = state->per_gpu_compute_tokens();

  // Hot candidates: the top-k experts by per-vExpert capacity (Alg. 2
  // line 6 takes only the argmax; evaluating a few near-ties avoids
  // stalls when two hot experts bottleneck different GPUs).
  std::vector<int> order(static_cast<size_t>(assignment.num_experts()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return caps[static_cast<size_t>(a)] > caps[static_cast<size_t>(b)];
  });
  const int hot_count =
      std::min(options_.max_hot_candidates,
               static_cast<int>(order.size()));

  double best_score = std::numeric_limits<double>::infinity();
  int best_hot = -1, best_cold = -1;
  GpuId best_shrink = -1, best_dst = -1;

  // Cold candidates: the coldest shrinkable experts (bottom-k by capacity).
  // The paper takes only the argmin; a few candidates diversify the freed
  // slots across GPUs, which matters once all slots are occupied.
  std::vector<int> cold_candidates;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (placement.VExperts(*it) >= 2) cold_candidates.push_back(*it);
    if (static_cast<int>(cold_candidates.size()) >=
        options_.max_hot_candidates) {
      break;
    }
  }
  if (cold_candidates.empty()) return {};

  // Candidate placements differ from the incumbent only in experts `hot`
  // and `cold`, and every expert routes independently (Alg. 3 state is
  // per-expert) — so the state's Apply/Undo evaluates a candidate in
  // O(|affected GPUs| * G) with no placement or routing copies at all,
  // integer-exact, hence bit-identical to a from-scratch route + Eq. 5.
  const Topology& topo = cost_model_->profile().topology();
  for (int hi = 0; hi < hot_count; ++hi) {
    const int hot = order[static_cast<size_t>(hi)];
    if (assignment.ExpertTotal(hot) == 0) break;

    // Nodes already hosting the hot expert: expanding there keeps the
    // replica group node-local, whose AllReduce is an order of magnitude
    // cheaper than a cross-node group (NVLink vs IB ring bottleneck).
    // Depends only on `hot` (the state is back at entry depth here, and
    // every candidate op below is undone), so it hoists out of the
    // cold/shrink loops.
    std::set<NodeId> hot_nodes;
    for (GpuId h : placement.HostGpus(hot)) {
      hot_nodes.insert(topo.NodeOf(h));
    }

    for (int cold : cold_candidates) {
      if (cold == hot) continue;

      // Shrink-host candidates: hosts of the cold expert, least-loaded
      // first (the freed slot usually becomes the hot expert's new home).
      std::vector<GpuId> shrink_candidates;
      for (const auto& [gpu, count] : placement.Replicas(cold)) {
        shrink_candidates.push_back(gpu);
      }
      std::sort(shrink_candidates.begin(), shrink_candidates.end(),
                [&](GpuId a, GpuId b) {
                  // Replicas on degraded devices go first — shrinking them
                  // is the cheap half of migrate-away.
                  const bool da = !Expandable(a);
                  const bool db = !Expandable(b);
                  if (da != db) return da;
                  return gpu_loads[static_cast<size_t>(a)] <
                         gpu_loads[static_cast<size_t>(b)];
                });
      constexpr size_t kMaxShrinkCandidates = 2;
      if (shrink_candidates.size() > kMaxShrinkCandidates) {
        shrink_candidates.resize(kMaxShrinkCandidates);
      }

      for (GpuId shrink_gpu : shrink_candidates) {
        if (!state->Apply(MakeShrink(cold, shrink_gpu))) continue;

        // Expand destinations: GPUs with a free slot; node-local to the
        // hot expert's replicas first, then cheapest loads. `placement`
        // reflects the shrink here — exactly the after_shrink view.
        std::vector<GpuId> candidates;
        for (GpuId g = 0; g < placement.num_gpus(); ++g) {
          if (placement.FreeSlots(g) > 0 && Expandable(g)) {
            candidates.push_back(g);
          }
        }
        if (options_.topology_aware_expansion) {
          std::sort(candidates.begin(), candidates.end(),
                    [&](GpuId a, GpuId b) {
                      const bool la = hot_nodes.count(topo.NodeOf(a)) > 0;
                      const bool lb = hot_nodes.count(topo.NodeOf(b)) > 0;
                      if (la != lb) return la;
                      // With the max-link objective, the heaviest single
                      // inbound link ranks first: one saturated link
                      // bounds the A2A phase even when the node's
                      // aggregate inflow is moderate.
                      if (options_.max_link_objective) {
                        const int64_t ma =
                            state->max_cross_link_into(topo.NodeOf(a));
                        const int64_t mb =
                            state->max_cross_link_into(topo.NodeOf(b));
                        if (ma != mb) return ma < mb;
                      }
                      // Prefer the node with the lightest cross-link
                      // inbound load: the new replica will pull remote
                      // tokens onto its node, so land it where the
                      // inter-node links have headroom.
                      const int64_t ia =
                          state->cross_node_inflow(topo.NodeOf(a));
                      const int64_t ib =
                          state->cross_node_inflow(topo.NodeOf(b));
                      if (ia != ib) return ia < ib;
                      if (gpu_loads[static_cast<size_t>(a)] !=
                          gpu_loads[static_cast<size_t>(b)]) {
                        return gpu_loads[static_cast<size_t>(a)] <
                               gpu_loads[static_cast<size_t>(b)];
                      }
                      return a < b;
                    });
        } else {
          std::sort(candidates.begin(), candidates.end(),
                    [&](GpuId a, GpuId b) {
                      const bool la = hot_nodes.count(topo.NodeOf(a)) > 0;
                      const bool lb = hot_nodes.count(topo.NodeOf(b)) > 0;
                      if (la != lb) return la;
                      return gpu_loads[static_cast<size_t>(a)] <
                             gpu_loads[static_cast<size_t>(b)];
                    });
        }
        if (options_.max_expand_candidates > 0 &&
            static_cast<int>(candidates.size()) >
                options_.max_expand_candidates) {
          candidates.resize(
              static_cast<size_t>(options_.max_expand_candidates));
        }
        for (GpuId dst : candidates) {
          // Mutate-undo on the incremental state: O(Δ) per candidate.
          if (!state->Apply(MakeExpand(hot, /*copy_from=*/-1, dst))) continue;
          const double score = state->Score();
          ++stats->candidates_evaluated;
          state->Undo();
          if (score < best_score) {
            best_score = score;
            best_hot = hot;
            best_cold = cold;
            best_shrink = shrink_gpu;
            best_dst = dst;
          }
        }
        state->Undo();  // the shrink — back to entry depth
      }
    }
  }
  if (best_dst >= 0) stats->best_score = best_score;
  if (best_dst < 0) return {};
  if (best_score >= score0 * (1.0 - options_.min_improvement_frac)) return {};

  // Expand copy source: free when dst already hosts the expert; otherwise
  // the closest existing replica (same node preferred). Dead devices can
  // never be the source — their state is lost (an orphaned expert's only
  // replica on a dead device means no expand can be planned at all).
  // Queried on the incumbent placement: the winning shrink touches only
  // best_cold, and best_cold != best_hot, so best_hot's replicas are
  // identical before and after the shrink.
  GpuId copy_src = -1;
  if (placement.VExpertsOn(best_hot, best_dst) == 0) {
    std::vector<GpuId> hosts = placement.HostGpus(best_hot);
    if (health_ != nullptr) {
      hosts.erase(std::remove_if(hosts.begin(), hosts.end(),
                                 [this](GpuId h) { return !health_->alive(h); }),
                  hosts.end());
    }
    if (hosts.empty()) return {};
    copy_src = hosts.front();
    for (GpuId h : hosts) {
      if (topo.SameNode(h, best_dst)) {
        copy_src = h;
        break;
      }
    }
  }

  // Dependency order: the Shrink may free the very slot the Expand uses.
  stats->accepted = true;
  return {MakeShrink(best_cold, best_shrink),
          MakeExpand(best_hot, copy_src, best_dst)};
}

double PolicyMaker::TotalSyncSeconds(const Placement& placement) const {
  double total = 0.0;
  for (int e = 0; e < placement.num_experts(); ++e) {
    total += cost_model_->SyncSeconds(placement, e);
  }
  return total;
}

std::vector<ModOp> PolicyMaker::PlanEvacuation(const Placement& placement,
                                               int max_moves) const {
  std::vector<ModOp> plan;
  if (health_ == nullptr || max_moves <= 0) return plan;
  Placement current = placement;
  const Topology& topo = cost_model_->profile().topology();

  for (GpuId g = 0; g < current.num_gpus(); ++g) {
    if (health_->state(g) != DeviceState::kDegraded) continue;
    for (const int e : current.ExpertsOn(g)) {
      if (static_cast<int>(plan.size()) >= max_moves) return plan;
      const int here = current.VExpertsOn(e, g);
      if (current.VExperts(e) > here) {
        // Capacity exists elsewhere: release the straggler's replicas.
        for (int i = 0; i < here && current.VExperts(e) > 1; ++i) {
          const ModOp op = MakeShrink(e, g);
          if (!ApplyOp(op, &current).ok()) break;
          plan.push_back(op);
          if (static_cast<int>(plan.size()) >= max_moves) return plan;
        }
      } else {
        // Sole host is the straggler: copy the expert to a healthy device
        // (same node preferred); the straggler-side shrink follows on a
        // later trigger, once the copy is live.
        GpuId dst = -1;
        auto usable = [&](GpuId cand) {
          return cand != g && Expandable(cand) && current.FreeSlots(cand) > 0;
        };
        for (GpuId cand : topo.GpusOnNode(topo.NodeOf(g))) {
          if (usable(cand)) {
            dst = cand;
            break;
          }
        }
        for (GpuId cand = 0; dst < 0 && cand < current.num_gpus(); ++cand) {
          if (usable(cand)) dst = cand;
        }
        if (dst < 0) {
          // Fully packed cluster: free a slot by un-packing a healthy
          // device's multi-vExpert resident (weight-shared copies, so the
          // shrink costs nothing and loses no expert). The unpack only
          // makes sense together with the Expand that uses the freed slot,
          // so require room for the pair.
          if (static_cast<int>(plan.size()) + 2 > max_moves) return plan;
          for (GpuId cand = 0; dst < 0 && cand < current.num_gpus(); ++cand) {
            if (cand == g || !Expandable(cand)) continue;
            for (const int x : current.ExpertsOn(cand)) {
              if (x != e && current.VExpertsOn(x, cand) >= 2) {
                const ModOp unpack = MakeShrink(x, cand);
                if (!ApplyOp(unpack, &current).ok()) continue;
                plan.push_back(unpack);
                dst = cand;
                break;
              }
            }
          }
        }
        if (dst < 0) continue;
        const ModOp op = MakeExpand(e, g, dst);
        if (!ApplyOp(op, &current).ok()) continue;
        plan.push_back(op);
      }
    }
  }
  return plan;
}

std::vector<ModOp> PolicyMaker::PlanMigrations(const Placement& placement,
                                               int max_moves) const {
  std::vector<ModOp> plan;
  Placement current = placement;
  const Topology& topo = cost_model_->profile().topology();

  // Per-expert Eq. 9 cache: a candidate Migrate touches exactly two
  // experts, so its trial total substitutes two recomputed entries instead
  // of re-deriving all E AllReduce groups per candidate. The total is
  // always re-summed left-to-right over the full expert range, so every
  // value equals a from-scratch TotalSyncSeconds of the same placement
  // bitwise.
  std::vector<double> sync(static_cast<size_t>(current.num_experts()), 0.0);
  for (int e = 0; e < current.num_experts(); ++e) {
    sync[static_cast<size_t>(e)] = cost_model_->SyncSeconds(current, e);
  }
  const auto total_substituting = [&](int e1, double s1, int e2, double s2) {
    double total = 0.0;
    for (int e = 0; e < current.num_experts(); ++e) {
      if (e == e1) {
        total += s1;
      } else if (e == e2) {
        total += s2;
      } else {
        total += sync[static_cast<size_t>(e)];
      }
    }
    return total;
  };

  for (int move = 0; move < max_moves; ++move) {
    const double base = total_substituting(-1, 0.0, -1, 0.0);
    double best_gain = options_.min_migration_gain_sec;
    ModOp best_op;
    bool found = false;

    for (int e = 0; e < current.num_experts(); ++e) {
      const std::vector<GpuId> hosts = current.HostGpus(e);
      if (hosts.size() < 2 || topo.NodesSpanned(hosts) < 2) continue;

      // Majority node: the node carrying most of e's vExperts.
      std::map<NodeId, int> per_node;
      for (const auto& [gpu, count] : current.Replicas(e)) {
        per_node[topo.NodeOf(gpu)] += count;
      }
      NodeId major = per_node.begin()->first;
      for (const auto& [node, count] : per_node) {
        if (count > per_node[major]) major = node;
      }

      for (GpuId lonely : hosts) {
        if (topo.NodeOf(lonely) == major) continue;
        // Try to pull e's off-node replica onto the majority node by
        // swapping with a vExpert already there.
        for (GpuId target : topo.GpusOnNode(major)) {
          if (!Expandable(target)) continue;
          // Swapping onto a GPU that already hosts e just packs — still
          // useful, because it dissolves `lonely` from the replica group.
          for (int partner : current.ExpertsOn(target)) {
            if (partner == e) continue;
            // Mutate-undo instead of copying the placement per candidate
            // (an O(E x G) copy at large EP): apply, score the two touched
            // experts, revert with the inverse swap.
            const ModOp op = MakeMigrate(e, lonely, partner, target);
            if (!ApplyOp(op, &current).ok()) continue;
            const double gain =
                base - total_substituting(
                           e, cost_model_->SyncSeconds(current, e), partner,
                           cost_model_->SyncSeconds(current, partner));
            FLEXMOE_CHECK(
                ApplyOp(MakeMigrate(e, target, partner, lonely), &current)
                    .ok());
            if (gain > best_gain) {
              best_gain = gain;
              best_op = op;
              found = true;
            }
          }
        }
      }
    }
    if (!found) break;
    FLEXMOE_CHECK_OK(ApplyOp(best_op, &current));
    sync[static_cast<size_t>(best_op.expert)] =
        cost_model_->SyncSeconds(current, best_op.expert);
    sync[static_cast<size_t>(best_op.partner_expert)] =
        cost_model_->SyncSeconds(current, best_op.partner_expert);
    plan.push_back(best_op);
  }
  return plan;
}

}  // namespace flexmoe
