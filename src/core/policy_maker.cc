#include "core/policy_maker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/balance.h"

namespace flexmoe {

Status PolicyMakerOptions::Validate() const {
  if (min_improvement_frac < 0.0 || min_improvement_frac >= 1.0) {
    return Status::InvalidArgument("min_improvement_frac out of range");
  }
  if (min_migration_gain_sec < 0.0) {
    return Status::InvalidArgument("min_migration_gain_sec < 0");
  }
  if (max_hot_candidates < 1) {
    return Status::InvalidArgument("max_hot_candidates must be >= 1");
  }
  return Status::OK();
}

PolicyMaker::PolicyMaker(const CostModel* cost_model,
                         const PolicyMakerOptions& options)
    : cost_model_(cost_model), options_(options) {
  FLEXMOE_CHECK(cost_model != nullptr);
  FLEXMOE_CHECK(options.Validate().ok());
}

bool PolicyMaker::Expandable(GpuId g) const {
  return health_ == nullptr ||
         health_->state(g) == DeviceState::kHealthy;
}

std::vector<double> PolicyMaker::VExpertCapacities(
    const Assignment& assignment, const Placement& placement) const {
  std::vector<double> caps(static_cast<size_t>(assignment.num_experts()));
  for (int e = 0; e < assignment.num_experts(); ++e) {
    caps[static_cast<size_t>(e)] =
        static_cast<double>(assignment.ExpertTotal(e)) /
        static_cast<double>(placement.VExperts(e));
  }
  return caps;
}

namespace {

/// Search score for a candidate placement: the 8-norm of per-GPU times.
/// It upper-bounds and closely tracks the Eq. 5 max, but unlike the bare
/// max it strictly rewards relieving ANY heavily loaded GPU. That matters
/// when two hot experts bottleneck different GPUs at nearly equal times:
/// expanding either one leaves the max unchanged for one round, and a
/// max-only objective would reject the move and stall, while the 8-norm
/// lets the alternating moves through.
double PlanScore(const LayerCostEstimate& est) {
  double acc = 0.0;
  for (double v : est.per_gpu_seconds) {
    const double v2 = v * v;
    const double v4 = v2 * v2;
    acc += v4 * v4;
  }
  return std::pow(acc, 1.0 / 8.0);
}

}  // namespace

std::vector<ModOp> PolicyMaker::MakeSchedulingPlan(
    const Assignment& assignment, const Placement& placement,
    PlanSearchStats* stats) const {
  PlanSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = PlanSearchStats();
  const RoutedAssignment routed =
      FlexibleRouter::Route(assignment, placement);
  const bool include_sync = !options_.serve_objective;
  const LayerCostEstimate est0 =
      cost_model_->EstimateLayer(routed, placement, include_sync);
  const double score0 = PlanScore(est0);
  stats->score_before = score0;
  stats->best_score = score0;
  const std::vector<double> caps = VExpertCapacities(assignment, placement);
  const std::vector<int64_t> gpu_loads = routed.PerGpuComputeTokens();

  // Hot candidates: the top-k experts by per-vExpert capacity (Alg. 2
  // line 6 takes only the argmax; evaluating a few near-ties avoids
  // stalls when two hot experts bottleneck different GPUs).
  std::vector<int> order(static_cast<size_t>(assignment.num_experts()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return caps[static_cast<size_t>(a)] > caps[static_cast<size_t>(b)];
  });
  const int hot_count =
      std::min(options_.max_hot_candidates,
               static_cast<int>(order.size()));

  double best_score = std::numeric_limits<double>::infinity();
  int best_hot = -1, best_cold = -1;
  GpuId best_shrink = -1, best_dst = -1;

  // Cold candidates: the coldest shrinkable experts (bottom-k by capacity).
  // The paper takes only the argmin; a few candidates diversify the freed
  // slots across GPUs, which matters once all slots are occupied.
  std::vector<int> cold_candidates;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (placement.VExperts(*it) >= 2) cold_candidates.push_back(*it);
    if (static_cast<int>(cold_candidates.size()) >=
        options_.max_hot_candidates) {
      break;
    }
  }
  if (cold_candidates.empty()) return {};

  // Candidate placements differ from `placement` only in experts `hot`
  // and `cold`, and every expert routes independently (Alg. 3 state is
  // per-expert). Instead of a full O(E x G^2) re-route per candidate,
  // subtract the two changed experts' contributions once per (hot, cold)
  // pair and re-add them under the candidate placement — integer-exact,
  // so scores (and therefore plans) are bit-identical to the full route.
  RoutedAssignment scratch_routed;

  for (int hi = 0; hi < hot_count; ++hi) {
    const int hot = order[static_cast<size_t>(hi)];
    if (assignment.ExpertTotal(hot) == 0) break;

    for (int cold : cold_candidates) {
      if (cold == hot) continue;

      RoutedAssignment minus = routed;
      FlexibleRouter::AccumulateExpert(assignment, placement, cold, -1,
                                       &minus);
      FlexibleRouter::AccumulateExpert(assignment, placement, hot, -1,
                                       &minus);

      // Shrink-host candidates: hosts of the cold expert, least-loaded
      // first (the freed slot usually becomes the hot expert's new home).
      std::vector<GpuId> shrink_candidates;
      for (const auto& [gpu, count] : placement.Replicas(cold)) {
        shrink_candidates.push_back(gpu);
      }
      std::sort(shrink_candidates.begin(), shrink_candidates.end(),
                [&](GpuId a, GpuId b) {
                  // Replicas on degraded devices go first — shrinking them
                  // is the cheap half of migrate-away.
                  const bool da = !Expandable(a);
                  const bool db = !Expandable(b);
                  if (da != db) return da;
                  return gpu_loads[static_cast<size_t>(a)] <
                         gpu_loads[static_cast<size_t>(b)];
                });
      constexpr size_t kMaxShrinkCandidates = 2;
      if (shrink_candidates.size() > kMaxShrinkCandidates) {
        shrink_candidates.resize(kMaxShrinkCandidates);
      }

      // Nodes already hosting the hot expert: expanding there keeps the
      // replica group node-local, whose AllReduce is an order of magnitude
      // cheaper than a cross-node group (NVLink vs IB ring bottleneck).
      const Topology& topo = cost_model_->profile().topology();
      std::set<NodeId> hot_nodes;
      for (GpuId h : placement.HostGpus(hot)) {
        hot_nodes.insert(topo.NodeOf(h));
      }

      for (GpuId shrink_gpu : shrink_candidates) {
        Placement after_shrink = placement;
        if (!after_shrink.RemoveVExpert(cold, shrink_gpu).ok()) continue;

        // The cold expert's routing under the shrunk placement is shared
        // by every expand destination; add it back once.
        RoutedAssignment shrunk_routed = minus;
        FlexibleRouter::AccumulateExpert(assignment, after_shrink, cold, +1,
                                         &shrunk_routed);

        // Expand destinations: GPUs with a free slot; node-local to the
        // hot expert's replicas first, then cheapest loads.
        std::vector<GpuId> candidates;
        for (GpuId g = 0; g < placement.num_gpus(); ++g) {
          if (after_shrink.FreeSlots(g) > 0 && Expandable(g)) {
            candidates.push_back(g);
          }
        }
        std::sort(candidates.begin(), candidates.end(),
                  [&](GpuId a, GpuId b) {
                    const bool la = hot_nodes.count(topo.NodeOf(a)) > 0;
                    const bool lb = hot_nodes.count(topo.NodeOf(b)) > 0;
                    if (la != lb) return la;
                    return gpu_loads[static_cast<size_t>(a)] <
                           gpu_loads[static_cast<size_t>(b)];
                  });
        if (options_.max_expand_candidates > 0 &&
            static_cast<int>(candidates.size()) >
                options_.max_expand_candidates) {
          candidates.resize(
              static_cast<size_t>(options_.max_expand_candidates));
        }
        for (GpuId dst : candidates) {
          // Mutate-undo instead of copying the placement per candidate.
          if (!after_shrink.AddVExpert(hot, dst).ok()) continue;
          scratch_routed = shrunk_routed;
          FlexibleRouter::AccumulateExpert(assignment, after_shrink, hot, +1,
                                           &scratch_routed);
          const double score = PlanScore(cost_model_->EstimateLayer(
              scratch_routed, after_shrink, include_sync));
          ++stats->candidates_evaluated;
          FLEXMOE_CHECK(after_shrink.RemoveVExpert(hot, dst).ok());
          if (score < best_score) {
            best_score = score;
            best_hot = hot;
            best_cold = cold;
            best_shrink = shrink_gpu;
            best_dst = dst;
          }
        }
      }
    }
  }
  if (best_dst >= 0) stats->best_score = best_score;
  if (best_dst < 0) return {};
  if (best_score >= score0 * (1.0 - options_.min_improvement_frac)) return {};

  // Expand copy source: free when dst already hosts the expert; otherwise
  // the closest existing replica (same node preferred). Dead devices can
  // never be the source — their state is lost (an orphaned expert's only
  // replica on a dead device means no expand can be planned at all).
  Placement after_shrink = placement;
  FLEXMOE_CHECK(after_shrink.RemoveVExpert(best_cold, best_shrink).ok());
  GpuId copy_src = -1;
  if (after_shrink.VExpertsOn(best_hot, best_dst) == 0) {
    std::vector<GpuId> hosts = after_shrink.HostGpus(best_hot);
    if (health_ != nullptr) {
      hosts.erase(std::remove_if(hosts.begin(), hosts.end(),
                                 [this](GpuId h) { return !health_->alive(h); }),
                  hosts.end());
    }
    if (hosts.empty()) return {};
    copy_src = hosts.front();
    const Topology& topo = cost_model_->profile().topology();
    for (GpuId h : hosts) {
      if (topo.SameNode(h, best_dst)) {
        copy_src = h;
        break;
      }
    }
  }

  // Dependency order: the Shrink may free the very slot the Expand uses.
  stats->accepted = true;
  return {MakeShrink(best_cold, best_shrink),
          MakeExpand(best_hot, copy_src, best_dst)};
}

double PolicyMaker::TotalSyncSeconds(const Placement& placement) const {
  double total = 0.0;
  for (int e = 0; e < placement.num_experts(); ++e) {
    total += cost_model_->SyncSeconds(placement, e);
  }
  return total;
}

std::vector<ModOp> PolicyMaker::PlanEvacuation(const Placement& placement,
                                               int max_moves) const {
  std::vector<ModOp> plan;
  if (health_ == nullptr || max_moves <= 0) return plan;
  Placement current = placement;
  const Topology& topo = cost_model_->profile().topology();

  for (GpuId g = 0; g < current.num_gpus(); ++g) {
    if (health_->state(g) != DeviceState::kDegraded) continue;
    for (const int e : current.ExpertsOn(g)) {
      if (static_cast<int>(plan.size()) >= max_moves) return plan;
      const int here = current.VExpertsOn(e, g);
      if (current.VExperts(e) > here) {
        // Capacity exists elsewhere: release the straggler's replicas.
        for (int i = 0; i < here && current.VExperts(e) > 1; ++i) {
          const ModOp op = MakeShrink(e, g);
          if (!ApplyOp(op, &current).ok()) break;
          plan.push_back(op);
          if (static_cast<int>(plan.size()) >= max_moves) return plan;
        }
      } else {
        // Sole host is the straggler: copy the expert to a healthy device
        // (same node preferred); the straggler-side shrink follows on a
        // later trigger, once the copy is live.
        GpuId dst = -1;
        auto usable = [&](GpuId cand) {
          return cand != g && Expandable(cand) && current.FreeSlots(cand) > 0;
        };
        for (GpuId cand : topo.GpusOnNode(topo.NodeOf(g))) {
          if (usable(cand)) {
            dst = cand;
            break;
          }
        }
        for (GpuId cand = 0; dst < 0 && cand < current.num_gpus(); ++cand) {
          if (usable(cand)) dst = cand;
        }
        if (dst < 0) {
          // Fully packed cluster: free a slot by un-packing a healthy
          // device's multi-vExpert resident (weight-shared copies, so the
          // shrink costs nothing and loses no expert). The unpack only
          // makes sense together with the Expand that uses the freed slot,
          // so require room for the pair.
          if (static_cast<int>(plan.size()) + 2 > max_moves) return plan;
          for (GpuId cand = 0; dst < 0 && cand < current.num_gpus(); ++cand) {
            if (cand == g || !Expandable(cand)) continue;
            for (const int x : current.ExpertsOn(cand)) {
              if (x != e && current.VExpertsOn(x, cand) >= 2) {
                const ModOp unpack = MakeShrink(x, cand);
                if (!ApplyOp(unpack, &current).ok()) continue;
                plan.push_back(unpack);
                dst = cand;
                break;
              }
            }
          }
        }
        if (dst < 0) continue;
        const ModOp op = MakeExpand(e, g, dst);
        if (!ApplyOp(op, &current).ok()) continue;
        plan.push_back(op);
      }
    }
  }
  return plan;
}

std::vector<ModOp> PolicyMaker::PlanMigrations(const Placement& placement,
                                               int max_moves) const {
  std::vector<ModOp> plan;
  Placement current = placement;
  const Topology& topo = cost_model_->profile().topology();

  for (int move = 0; move < max_moves; ++move) {
    const double base = TotalSyncSeconds(current);
    double best_gain = options_.min_migration_gain_sec;
    ModOp best_op;
    bool found = false;

    for (int e = 0; e < current.num_experts(); ++e) {
      const std::vector<GpuId> hosts = current.HostGpus(e);
      if (hosts.size() < 2 || topo.NodesSpanned(hosts) < 2) continue;

      // Majority node: the node carrying most of e's vExperts.
      std::map<NodeId, int> per_node;
      for (const auto& [gpu, count] : current.Replicas(e)) {
        per_node[topo.NodeOf(gpu)] += count;
      }
      NodeId major = per_node.begin()->first;
      for (const auto& [node, count] : per_node) {
        if (count > per_node[major]) major = node;
      }

      for (GpuId lonely : hosts) {
        if (topo.NodeOf(lonely) == major) continue;
        // Try to pull e's off-node replica onto the majority node by
        // swapping with a vExpert already there.
        for (GpuId target : topo.GpusOnNode(major)) {
          if (!Expandable(target)) continue;
          // Swapping onto a GPU that already hosts e just packs — still
          // useful, because it dissolves `lonely` from the replica group.
          for (int partner : current.ExpertsOn(target)) {
            if (partner == e) continue;
            Placement trial = current;
            const ModOp op = MakeMigrate(e, lonely, partner, target);
            if (!ApplyOp(op, &trial).ok()) continue;
            const double gain = base - TotalSyncSeconds(trial);
            if (gain > best_gain) {
              best_gain = gain;
              best_op = op;
              found = true;
            }
          }
        }
      }
    }
    if (!found) break;
    FLEXMOE_CHECK(ApplyOp(best_op, &current).ok());
    plan.push_back(best_op);
  }
  return plan;
}

}  // namespace flexmoe
