#include "core/step_executor.h"

#include <algorithm>

#include "collective/ordered_sync.h"
#include "moe/transformer.h"

namespace flexmoe {

namespace {

/// Emits one span per GPU the collective kept busy past `start` (untouched
/// GPUs keep their start time in per_gpu_finish and emit nothing).
void TracePerGpuSpans(obs::Tracer* tr, const char* name, const char* category,
                      double start, const CollectiveResult& result,
                      int layer) {
  if (tr == nullptr) return;
  for (size_t g = 0; g < result.per_gpu_finish.size(); ++g) {
    if (result.per_gpu_finish[g] > start) {
      tr->Span(name, category, static_cast<int>(g), start,
               result.per_gpu_finish[g], "layer", static_cast<double>(layer));
    }
  }
}

}  // namespace

Status PipelineOptions::Validate() const {
  if (chunks < 0) {
    return Status::InvalidArgument(
        "pipeline chunks must be >= 0 (0 = auto-K)");
  }
  return Status::OK();
}

StepExecutor::StepExecutor(ClusterState* cluster,
                           const HardwareProfile* profile,
                           const ModelConfig& model)
    : cluster_(cluster), profile_(profile), model_(model) {
  FLEXMOE_CHECK(cluster != nullptr);
  FLEXMOE_CHECK(profile != nullptr);
  FLEXMOE_CHECK_OK(model.Validate());
}

double StepExecutor::Frontier() const {
  double t = 0.0;
  for (int g = 0; g < cluster_->num_gpus(); ++g) {
    t = std::max(t, cluster_->GpuFreeAt(g));
  }
  return t;
}

const std::vector<double>* StepExecutor::BandwidthScales() const {
  if (health_ == nullptr) return nullptr;
  // Refilled per phase (cheap O(G)); the engine stretches each port by its
  // own GPU's factor, so a straggler pays its slowdown exactly once, on
  // its own ports, and never leaks it onto healthy peers' ports (the old
  // group-max scaling stretched every member of a ring and both endpoints
  // of a message — the double-stretch this replaces).
  port_scale_scratch_.resize(static_cast<size_t>(cluster_->num_gpus()));
  for (GpuId g = 0; g < cluster_->num_gpus(); ++g) {
    port_scale_scratch_[static_cast<size_t>(g)] =
        health_->bandwidth_multiplier(g);
  }
  return &port_scale_scratch_;
}

std::vector<GpuId> StepExecutor::AliveGpus() const {
  std::vector<GpuId> out;
  out.reserve(static_cast<size_t>(cluster_->num_gpus()));
  for (GpuId g = 0; g < cluster_->num_gpus(); ++g) {
    if (Alive(g)) out.push_back(g);
  }
  return out;
}

const ByteMatrix& StepExecutor::DispatchBytes(const RoutedAssignment& routed,
                                              bool transpose) const {
  // Reusable scratch: one G x G matrix per executor, refilled per call
  // (callers consume the matrix before the next DispatchBytes call).
  dispatch_bytes_scratch_.assign(routed.num_gpus, routed.num_gpus, 0.0);
  ByteMatrix& bytes = dispatch_bytes_scratch_;
  const double token_bytes = model_.token_bytes();
  for (int d = 0; d < routed.num_gpus; ++d) {
    if (!Alive(d)) continue;
    const int64_t* row = routed.dispatch_to.row(d);
    for (int s = 0; s < routed.num_gpus; ++s) {
      const int64_t tokens = row[s];
      if (tokens <= 0) continue;
      // Dead endpoints move nothing. Straggler slowdown is NOT folded into
      // the payload here: the engine's per-port scale (BandwidthScales)
      // stretches the slow endpoint's port directly, so the stretch
      // applies exactly once instead of inflating both ports' bytes.
      if (!Alive(s)) continue;
      const double payload = static_cast<double>(tokens) * token_bytes;
      if (transpose) {
        bytes(d, s) += payload;
      } else {
        bytes(s, d) += payload;
      }
    }
  }
  return bytes;
}

const ByteMatrix& StepExecutor::DispatchBytesChunk(
    const RoutedAssignment& routed, bool transpose, int k, int K) const {
  // Per-cell chunk split: cell v contributes v*(k+1)/K - v*k/K tokens to
  // chunk k. Integer-exact (the K pieces sum to v), and the last chunk is
  // the ceil — the property the pipelined floor bound relies on
  // (cost_model.cc, DESIGN.md Section 11).
  chunk_bytes_scratch_.assign(routed.num_gpus, routed.num_gpus, 0.0);
  ByteMatrix& bytes = chunk_bytes_scratch_;
  const double token_bytes = model_.token_bytes();
  const int64_t k64 = k;
  const int64_t K64 = K;
  for (int d = 0; d < routed.num_gpus; ++d) {
    if (!Alive(d)) continue;
    const int64_t* row = routed.dispatch_to.row(d);
    for (int s = 0; s < routed.num_gpus; ++s) {
      const int64_t tokens = row[s];
      if (tokens <= 0) continue;
      if (!Alive(s)) continue;
      const int64_t piece =
          tokens * (k64 + 1) / K64 - tokens * k64 / K64;
      if (piece <= 0) continue;
      const double payload = static_cast<double>(piece) * token_bytes;
      if (transpose) {
        bytes(d, s) += payload;
      } else {
        bytes(s, d) += payload;
      }
    }
  }
  return bytes;
}

double StepExecutor::RunExpertCompute(
    const RoutedAssignment& routed, double flops_per_token,
    const std::vector<double>& per_gpu_earliest, StepTiming* timing,
    const char* span_name, int layer) {
  obs::Tracer* tr = trace();
  double finish = 0.0;
  for (GpuId g = 0; g < routed.num_gpus; ++g) {
    // Tokens landing on a dead device (possible only in degraded mode,
    // when no live replica exists) are simply not computed.
    if (!Alive(g)) continue;
    const double gpu_start = per_gpu_earliest[static_cast<size_t>(g)];
    double gpu_finish = gpu_start;
    int64_t gpu_tokens = 0;
    const double effective_flops = flops_per_token * ComputeScale(g);
    for (int e = 0; e < routed.num_experts; ++e) {
      const int64_t tokens = routed.expert_gpu_tokens(e, g);
      if (tokens <= 0) continue;
      const double before = gpu_finish;
      gpu_finish = ExecCompute(cluster_, *profile_, g,
                               static_cast<double>(tokens), effective_flops,
                               gpu_finish);
      timing->per_gpu_expert_compute[static_cast<size_t>(g)] +=
          gpu_finish - before;
      gpu_tokens += tokens;
    }
    if (tr != nullptr && gpu_finish > gpu_start) {
      tr->Span(span_name, "compute", g, gpu_start, gpu_finish, "layer",
               static_cast<double>(layer), "tokens",
               static_cast<double>(gpu_tokens));
    }
    finish = std::max(finish, gpu_finish);
  }
  return finish;
}

double StepExecutor::RunExpertComputeChunk(
    const RoutedAssignment& routed, double flops_per_token, int k, int K,
    const std::vector<double>& per_gpu_earliest, StepTiming* timing,
    const char* span_name, int layer) {
  // RunExpertCompute restricted to chunk k's share of every (expert, GPU)
  // cell (same split rule as DispatchBytesChunk, so the computed tokens
  // are exactly the ones this chunk's dispatch delivered).
  obs::Tracer* tr = trace();
  const int64_t k64 = k;
  const int64_t K64 = K;
  double finish = 0.0;
  for (GpuId g = 0; g < routed.num_gpus; ++g) {
    if (!Alive(g)) continue;
    const double gpu_start = per_gpu_earliest[static_cast<size_t>(g)];
    double gpu_finish = gpu_start;
    const double effective_flops = flops_per_token * ComputeScale(g);
    for (int e = 0; e < routed.num_experts; ++e) {
      const int64_t cell = routed.expert_gpu_tokens(e, g);
      if (cell <= 0) continue;
      const int64_t tokens = cell * (k64 + 1) / K64 - cell * k64 / K64;
      if (tokens <= 0) continue;
      gpu_finish = ExecCompute(cluster_, *profile_, g,
                               static_cast<double>(tokens), effective_flops,
                               gpu_finish);
      // Busy time, not wall: a chunk whose dispatch landed early may wait
      // for the previous chunk's compute to drain, and that wait is the
      // overlap working as intended — not expert occupancy.
      timing->per_gpu_expert_compute[static_cast<size_t>(g)] +=
          profile_->ComputeSeconds(static_cast<double>(tokens),
                                   effective_flops);
    }
    if (tr != nullptr && gpu_finish > gpu_start) {
      tr->Span(span_name, "compute", g, gpu_start, gpu_finish, "layer",
               static_cast<double>(layer), "chunk", static_cast<double>(k));
    }
    finish = std::max(finish, gpu_finish);
  }
  return finish;
}

double StepExecutor::RunForwardLayers(const std::vector<LayerWork>& layers,
                                      const std::vector<GpuId>& alive,
                                      double frontier, StepTiming* timing) {
  obs::Tracer* tr = trace();
  const double fwd_flops = model_.expert_fwd_flops_per_token();
  const std::vector<double>* scales = BandwidthScales();
  for (size_t l = 0; l < layers.size(); ++l) {
    const LayerWork& work = layers[l];
    FLEXMOE_CHECK(work.routed != nullptr);
    const int layer = static_cast<int>(l);
    // Entries past the model's MoE layers are recirculation passes (the
    // serving path's second pass for overflow/re-routed tokens).
    const bool recirc = layer >= model_.num_moe_layers;
    // Shadow-parameter broadcasts (baseline FasterMoE) precede the layer.
    for (const ShadowBroadcast& bc : work.broadcasts) {
      if (!Alive(bc.root) || alive.size() < 2) continue;
      const CollectiveResult r =
          ExecBroadcast(cluster_, *profile_, bc.bytes, bc.root, alive,
                        frontier, scales);
      if (tr != nullptr) {
        tr->Span("shadow_bcast", "sync", bc.root, frontier, r.finish, "layer",
                 static_cast<double>(layer));
      }
      timing->sync_seconds += r.finish - frontier;
      frontier = r.finish;
    }

    // Per-layer chunk-depth dispatch (auto-K plans a depth per layer);
    // depth 1 falls through to the serial body below, which is the
    // pre-pipelining code expression-for-expression.
    const int chunks = EffectiveChunks(work);
    if (chunks > 1) {
      frontier = RunForwardLayerChunked(work, chunks, layer, recirc, scales,
                                        frontier, timing);
      continue;
    }

    const double phase0 = frontier;
    const CollectiveResult dispatch = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, false), frontier,
        scales);
    TracePerGpuSpans(tr, recirc ? "recirc_dispatch" : "dispatch",
                     recirc ? "recirculation" : "a2a", phase0, dispatch,
                     layer);
    timing->a2a_seconds += dispatch.finish - phase0;

    const double compute_finish = RunExpertCompute(
        *work.routed, fwd_flops, dispatch.per_gpu_finish, timing,
        recirc ? "recirc_expert_compute" : "expert_compute", layer);
    timing->compute_seconds += std::max(0.0, compute_finish - dispatch.finish);

    const CollectiveResult combine = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, true),
        compute_finish, scales);
    TracePerGpuSpans(tr, recirc ? "recirc_combine" : "combine",
                     recirc ? "recirculation" : "a2a", compute_finish,
                     combine, layer);
    timing->a2a_seconds += combine.finish - compute_finish;
    frontier = combine.finish;
  }
  return frontier;
}

double StepExecutor::RunForwardLayerChunked(
    const LayerWork& work, int chunks, int layer, bool recirc,
    const std::vector<double>* scales, double frontier, StepTiming* timing) {
  obs::Tracer* tr = trace();
  const double fwd_flops = model_.expert_fwd_flops_per_token();
  const int K = chunks;

  // Post every chunk's dispatch from the layer start: the NIC ports
  // serialize them in chunk order, so chunk k+1's wire time hides
  // behind chunk k's expert compute instead of extending the layer.
  const double phase0 = frontier;
  std::vector<CollectiveResult>& dispatches = chunk_dispatch_scratch_;
  dispatches.clear();
  dispatches.reserve(static_cast<size_t>(K));
  double dispatch_all = phase0;
  for (int k = 0; k < K; ++k) {
    CollectiveResult d = ExecAllToAll(
        cluster_, *profile_, DispatchBytesChunk(*work.routed, false, k, K),
        phase0, scales);
    if (tr != nullptr) {
      for (size_t g = 0; g < d.per_gpu_finish.size(); ++g) {
        if (d.per_gpu_finish[g] > phase0) {
          tr->Span(recirc ? "recirc_dispatch" : "dispatch",
                   recirc ? "recirculation" : "a2a", static_cast<int>(g),
                   phase0, d.per_gpu_finish[g], "layer",
                   static_cast<double>(layer), "chunk",
                   static_cast<double>(k));
        }
      }
    }
    dispatch_all = std::max(dispatch_all, d.finish);
    dispatches.push_back(std::move(d));
  }
  timing->a2a_seconds += dispatch_all - phase0;

  // Each chunk computes as soon as its own dispatch lands per GPU (the
  // compute streams serialize chunks), and its combine launches at the
  // chunk's global compute finish — draining behind later chunks'
  // compute on the port streams.
  double compute_all = phase0;
  double layer_end = phase0;
  for (int k = 0; k < K; ++k) {
    const double chunk_compute = RunExpertComputeChunk(
        *work.routed, fwd_flops, k, K, dispatches[static_cast<size_t>(k)]
            .per_gpu_finish,
        timing, recirc ? "recirc_expert_compute" : "expert_compute", layer);
    compute_all = std::max(compute_all, chunk_compute);
    const CollectiveResult combine = ExecAllToAll(
        cluster_, *profile_, DispatchBytesChunk(*work.routed, true, k, K),
        chunk_compute, scales);
    if (tr != nullptr) {
      for (size_t g = 0; g < combine.per_gpu_finish.size(); ++g) {
        if (combine.per_gpu_finish[g] > chunk_compute) {
          tr->Span(recirc ? "recirc_combine" : "combine",
                   recirc ? "recirculation" : "a2a", static_cast<int>(g),
                   chunk_compute, combine.per_gpu_finish[g], "layer",
                   static_cast<double>(layer), "chunk",
                   static_cast<double>(k));
        }
      }
    }
    layer_end = std::max(layer_end, combine.finish);
  }
  // Phase attribution mirrors the serial path's accounting: A2A gets the
  // leading dispatch window plus the combine tail past compute; compute
  // gets its exposed (non-overlapped) stretch.
  timing->compute_seconds += std::max(0.0, compute_all - dispatch_all);
  timing->a2a_seconds += std::max(0.0, layer_end - compute_all);
  return std::max(layer_end, compute_all);
}

double StepExecutor::RunBackwardLayerChunked(
    const LayerWork& work, int chunks, int layer,
    const std::vector<double>* scales, double frontier, StepTiming* timing,
    double* compute_all_out) {
  // The forward leg's overlap shape at backward FLOPs: grad-dispatch
  // chunks posted at the leg start, per-chunk backward compute at that
  // chunk's per-GPU dispatch finish, per-chunk grad combine at the
  // chunk's global compute finish. The caller launches this layer's
  // expert syncs at *compute_all_out — an expert's gradient is final only
  // once the last chunk's contribution is reduced.
  obs::Tracer* tr = trace();
  const double bwd_flops =
      model_.expert_fwdbwd_flops_per_token() - model_.expert_fwd_flops_per_token();
  const int K = chunks;

  const double phase0 = frontier;
  std::vector<CollectiveResult>& dispatches = chunk_dispatch_scratch_;
  dispatches.clear();
  dispatches.reserve(static_cast<size_t>(K));
  double dispatch_all = phase0;
  for (int k = 0; k < K; ++k) {
    CollectiveResult d = ExecAllToAll(
        cluster_, *profile_, DispatchBytesChunk(*work.routed, false, k, K),
        phase0, scales);
    if (tr != nullptr) {
      for (size_t g = 0; g < d.per_gpu_finish.size(); ++g) {
        if (d.per_gpu_finish[g] > phase0) {
          tr->Span("grad_dispatch", "a2a", static_cast<int>(g), phase0,
                   d.per_gpu_finish[g], "layer", static_cast<double>(layer),
                   "chunk", static_cast<double>(k));
        }
      }
    }
    dispatch_all = std::max(dispatch_all, d.finish);
    dispatches.push_back(std::move(d));
  }
  timing->a2a_seconds += dispatch_all - phase0;

  double compute_all = phase0;
  double layer_end = phase0;
  for (int k = 0; k < K; ++k) {
    const double chunk_compute = RunExpertComputeChunk(
        *work.routed, bwd_flops, k, K,
        dispatches[static_cast<size_t>(k)].per_gpu_finish, timing,
        "expert_compute_bwd", layer);
    compute_all = std::max(compute_all, chunk_compute);
    const CollectiveResult combine = ExecAllToAll(
        cluster_, *profile_, DispatchBytesChunk(*work.routed, true, k, K),
        chunk_compute, scales);
    if (tr != nullptr) {
      for (size_t g = 0; g < combine.per_gpu_finish.size(); ++g) {
        if (combine.per_gpu_finish[g] > chunk_compute) {
          tr->Span("grad_combine", "a2a", static_cast<int>(g), chunk_compute,
                   combine.per_gpu_finish[g], "layer",
                   static_cast<double>(layer), "chunk",
                   static_cast<double>(k));
        }
      }
    }
    layer_end = std::max(layer_end, combine.finish);
  }
  timing->compute_seconds += std::max(0.0, compute_all - dispatch_all);
  timing->a2a_seconds += std::max(0.0, layer_end - compute_all);
  *compute_all_out = compute_all;
  return std::max(layer_end, compute_all);
}

StepTiming StepExecutor::ExecuteForward(const std::vector<LayerWork>& layers) {
  StepTiming timing;
  timing.per_gpu_expert_compute.assign(
      static_cast<size_t>(cluster_->num_gpus()), 0.0);
  timing.start = Frontier();

  // With no backward pass there is no shadow-gradient AllReduce to pay,
  // so a broadcast is the whole shadowing price.
  const std::vector<GpuId> alive = AliveGpus();
  double frontier = RunForwardLayers(layers, alive, timing.start, &timing);

  // Non-MoE forward compute (attention, dense FFNs, gate), scaled to the
  // forward share of the full-step cost by the same fwd/fwdbwd ratio the
  // expert networks exhibit. No optimizer, no gradient AllReduce.
  {
    const double fwd_fraction = model_.expert_fwd_flops_per_token() /
                                model_.expert_fwdbwd_flops_per_token();
    const double non_moe =
        NonMoEComputeSeconds(model_, *profile_) * fwd_fraction;
    double phase_finish = frontier;
    for (GpuId g = 0; g < cluster_->num_gpus(); ++g) {
      if (!Alive(g)) continue;
      const double scaled = non_moe * ComputeScale(g);
      const double start = cluster_->compute(g).Reserve(frontier, scaled);
      phase_finish = std::max(phase_finish, start + scaled);
    }
    if (obs::Tracer* tr = trace(); tr != nullptr) {
      tr->Span("non_moe", "compute", obs::kControlLane, frontier,
               phase_finish);
    }
    timing.non_moe_seconds += phase_finish - frontier;
    frontier = phase_finish;
  }

  timing.end = frontier;
  if (obs::Tracer* tr = trace(); tr != nullptr) {
    tr->Span("forward_pass", "step", obs::kControlLane, timing.start,
             timing.end, "layers", static_cast<double>(layers.size()));
  }
  return timing;
}

double StepExecutor::RunLayerSyncs(const LayerWork& work, double earliest_base,
                                   NcclGroupCache* group_cache,
                                   const std::vector<double>* scales,
                                   StepTiming* timing, double sync_finish) {
  // Launch this layer's expert syncs, ordered by logical id (== expert
  // id): every GPU posts in the same ascending order, so the posting is
  // deadlock-free, and disjoint groups overlap through the stream model.
  obs::Tracer* tr = trace();
  std::vector<SyncOp> ops;
  if (work.placement != nullptr) {
    for (int e = 0; e < work.placement->num_experts(); ++e) {
      std::vector<GpuId> group = work.placement->HostGpus(e);
      if (health_ != nullptr) {
        group.erase(std::remove_if(group.begin(), group.end(),
                                   [this](GpuId g) { return !Alive(g); }),
                    group.end());
      }
      if (group.size() >= 2) {
        ops.push_back({e, std::move(group), model_.expert_grad_bytes()});
      }
    }
  }
  int extra_id = work.routed->num_experts;
  for (std::vector<GpuId> group : work.extra_sync_groups) {
    if (health_ != nullptr) {
      group.erase(std::remove_if(group.begin(), group.end(),
                                 [this](GpuId g) { return !Alive(g); }),
                  group.end());
    }
    if (group.size() >= 2) {
      ops.push_back({extra_id++, std::move(group),
                     model_.expert_grad_bytes()});
    }
  }
  for (const SyncOp& op : ops) {
    double earliest = earliest_base;
    if (group_cache != nullptr) {
      earliest += group_cache->Acquire(op.group);
    }
    const CollectiveResult r = ExecRingAllReduce(
        cluster_, *profile_, op.bytes, op.group, earliest, scales);
    if (tr != nullptr && !op.group.empty()) {
      tr->Span("expert_sync", "sync", op.group.front(), earliest, r.finish,
               "expert", static_cast<double>(op.logical_id), "gpus",
               static_cast<double>(op.group.size()));
    }
    sync_finish = std::max(sync_finish, r.finish);
    timing->sync_busy_seconds += r.finish - earliest;
  }
  return sync_finish;
}

StepTiming StepExecutor::ExecuteStep(const std::vector<LayerWork>& layers,
                                     NcclGroupCache* group_cache) {
  StepTiming timing;
  timing.per_gpu_expert_compute.assign(
      static_cast<size_t>(cluster_->num_gpus()), 0.0);
  timing.start = Frontier();
  double frontier = timing.start;

  const double fwd_flops = model_.expert_fwd_flops_per_token();
  const double bwd_flops = model_.expert_fwdbwd_flops_per_token() - fwd_flops;

  // Membership is fixed for the duration of a step (the elastic controller
  // mutates health only at step boundaries), so the alive list is computed
  // once and shared by every shadow broadcast and the DP AllReduce below.
  const std::vector<GpuId> alive = AliveGpus();

  // ---- Forward pass over MoE layers ------------------------------------
  frontier = RunForwardLayers(layers, alive, frontier, &timing);

  // ---- Non-MoE compute (attention, dense FFNs, gate, optimizer) --------
  {
    const double non_moe = NonMoEComputeSeconds(model_, *profile_);
    double phase_finish = frontier;
    for (GpuId g = 0; g < cluster_->num_gpus(); ++g) {
      if (!Alive(g)) continue;
      const double scaled = non_moe * ComputeScale(g);
      const double start = cluster_->compute(g).Reserve(frontier, scaled);
      phase_finish = std::max(phase_finish, start + scaled);
    }
    if (obs::Tracer* tr = trace(); tr != nullptr) {
      tr->Span("non_moe", "compute", obs::kControlLane, frontier,
               phase_finish);
    }
    timing.non_moe_seconds += phase_finish - frontier;
    frontier = phase_finish;
  }

  // ---- Backward pass in reverse order -----------------------------------
  // A layer's expert gradients are final right after its backward compute,
  // so its replica AllReduces launch immediately and overlap with the
  // remaining (shallower) layers' backward work — the standard bucketed-
  // overlap of DDP, applied per expert. The step only stretches if syncs
  // outlast the backward pass.
  double sync_finish = frontier;
  obs::Tracer* tr = trace();
  const std::vector<double>* scales = BandwidthScales();
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    const LayerWork& work = *it;
    const int layer = static_cast<int>(layers.rend() - it) - 1;

    // Per-layer chunk-depth dispatch, mirroring the forward leg; depth 1
    // is the pre-pipelining serial body, expression-for-expression.
    const int chunks = EffectiveChunks(work);
    if (chunks > 1) {
      double compute_all = frontier;
      frontier = RunBackwardLayerChunked(work, chunks, layer, scales,
                                         frontier, &timing, &compute_all);
      sync_finish = RunLayerSyncs(work, compute_all, group_cache, scales,
                                  &timing, sync_finish);
      continue;
    }

    const double phase0 = frontier;
    const CollectiveResult dispatch = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, false), frontier,
        scales);
    TracePerGpuSpans(tr, "grad_dispatch", "a2a", phase0, dispatch, layer);
    timing.a2a_seconds += dispatch.finish - phase0;

    const double compute_finish =
        RunExpertCompute(*work.routed, bwd_flops, dispatch.per_gpu_finish,
                         &timing, "expert_compute_bwd", layer);
    timing.compute_seconds += std::max(0.0, compute_finish - dispatch.finish);

    sync_finish = RunLayerSyncs(work, compute_finish, group_cache, scales,
                                &timing, sync_finish);

    const CollectiveResult combine = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, true),
        compute_finish, scales);
    TracePerGpuSpans(tr, "grad_combine", "a2a", compute_finish, combine,
                     layer);
    timing.a2a_seconds += combine.finish - compute_finish;
    frontier = combine.finish;
  }

  // The step ends when both the backward pass and the slowest expert sync
  // are done; only the non-overlapped tail counts as sync time.
  timing.sync_seconds += std::max(0.0, sync_finish - frontier);
  frontier = std::max(frontier, sync_finish);

  // ---- Data-parallel AllReduce of non-MoE gradients ----------------------
  // (every system pays it; tracked separately from the Eq. 9 expert sync).
  if (alive.size() >= 2) {
    const CollectiveResult dp = ExecRingAllReduce(
        cluster_, *profile_,
        model_.non_moe_params() * model_.grad_bytes, alive, frontier,
        scales);
    if (tr != nullptr) {
      tr->Span("dp_sync", "sync", alive.front(), frontier, dp.finish, "gpus",
               static_cast<double>(alive.size()));
    }
    timing.dp_sync_seconds += dp.finish - frontier;
    frontier = dp.finish;
  }

  timing.end = frontier;
  if (tr != nullptr) {
    tr->Span("train_step", "step", obs::kControlLane, timing.start, timing.end,
             "layers", static_cast<double>(layers.size()));
  }
  return timing;
}

}  // namespace flexmoe
