#include "core/step_executor.h"

#include <algorithm>

#include "collective/ordered_sync.h"
#include "moe/transformer.h"

namespace flexmoe {

namespace {

/// Emits one span per GPU the collective kept busy past `start` (untouched
/// GPUs keep their start time in per_gpu_finish and emit nothing).
void TracePerGpuSpans(obs::Tracer* tr, const char* name, const char* category,
                      double start, const CollectiveResult& result,
                      int layer) {
  if (tr == nullptr) return;
  for (size_t g = 0; g < result.per_gpu_finish.size(); ++g) {
    if (result.per_gpu_finish[g] > start) {
      tr->Span(name, category, static_cast<int>(g), start,
               result.per_gpu_finish[g], "layer", static_cast<double>(layer));
    }
  }
}

}  // namespace

StepExecutor::StepExecutor(ClusterState* cluster,
                           const HardwareProfile* profile,
                           const ModelConfig& model)
    : cluster_(cluster), profile_(profile), model_(model) {
  FLEXMOE_CHECK(cluster != nullptr);
  FLEXMOE_CHECK(profile != nullptr);
  FLEXMOE_CHECK(model.Validate().ok());
}

double StepExecutor::Frontier() const {
  double t = 0.0;
  for (int g = 0; g < cluster_->num_gpus(); ++g) {
    t = std::max(t, cluster_->GpuFreeAt(g));
  }
  return t;
}

double StepExecutor::GroupBandwidthScale(
    const std::vector<GpuId>& group) const {
  if (health_ == nullptr) return 1.0;
  double scale = 1.0;
  for (const GpuId g : group) {
    scale = std::max(scale, health_->bandwidth_multiplier(g));
  }
  return scale;
}

std::vector<GpuId> StepExecutor::AliveGpus() const {
  std::vector<GpuId> out;
  out.reserve(static_cast<size_t>(cluster_->num_gpus()));
  for (GpuId g = 0; g < cluster_->num_gpus(); ++g) {
    if (Alive(g)) out.push_back(g);
  }
  return out;
}

const ByteMatrix& StepExecutor::DispatchBytes(const RoutedAssignment& routed,
                                              bool transpose) const {
  // Reusable scratch: one G x G matrix per executor, refilled per call
  // (callers consume the matrix before the next DispatchBytes call).
  dispatch_bytes_scratch_.assign(routed.num_gpus, routed.num_gpus, 0.0);
  ByteMatrix& bytes = dispatch_bytes_scratch_;
  const double token_bytes = model_.token_bytes();
  for (int d = 0; d < routed.num_gpus; ++d) {
    if (!Alive(d)) continue;
    const int64_t* row = routed.dispatch_to.row(d);
    for (int s = 0; s < routed.num_gpus; ++s) {
      const int64_t tokens = row[s];
      if (tokens <= 0) continue;
      // Dead endpoints move nothing; a straggler endpoint stretches its
      // messages by the bandwidth multiplier (modeled as extra bytes).
      if (!Alive(s)) continue;
      double payload = static_cast<double>(tokens) * token_bytes;
      if (health_ != nullptr) {
        payload *= std::max(health_->bandwidth_multiplier(s),
                            health_->bandwidth_multiplier(d));
      }
      if (transpose) {
        bytes(d, s) += payload;
      } else {
        bytes(s, d) += payload;
      }
    }
  }
  return bytes;
}

double StepExecutor::RunExpertCompute(
    const RoutedAssignment& routed, double flops_per_token,
    const std::vector<double>& per_gpu_earliest, StepTiming* timing,
    const char* span_name, int layer) {
  obs::Tracer* tr = trace();
  double finish = 0.0;
  for (GpuId g = 0; g < routed.num_gpus; ++g) {
    // Tokens landing on a dead device (possible only in degraded mode,
    // when no live replica exists) are simply not computed.
    if (!Alive(g)) continue;
    const double gpu_start = per_gpu_earliest[static_cast<size_t>(g)];
    double gpu_finish = gpu_start;
    int64_t gpu_tokens = 0;
    const double effective_flops = flops_per_token * ComputeScale(g);
    for (int e = 0; e < routed.num_experts; ++e) {
      const int64_t tokens = routed.expert_gpu_tokens(e, g);
      if (tokens <= 0) continue;
      const double before = gpu_finish;
      gpu_finish = ExecCompute(cluster_, *profile_, g,
                               static_cast<double>(tokens), effective_flops,
                               gpu_finish);
      timing->per_gpu_expert_compute[static_cast<size_t>(g)] +=
          gpu_finish - before;
      gpu_tokens += tokens;
    }
    if (tr != nullptr && gpu_finish > gpu_start) {
      tr->Span(span_name, "compute", g, gpu_start, gpu_finish, "layer",
               static_cast<double>(layer), "tokens",
               static_cast<double>(gpu_tokens));
    }
    finish = std::max(finish, gpu_finish);
  }
  return finish;
}

double StepExecutor::RunForwardLayers(const std::vector<LayerWork>& layers,
                                      const std::vector<GpuId>& alive,
                                      double frontier, StepTiming* timing) {
  obs::Tracer* tr = trace();
  const double fwd_flops = model_.expert_fwd_flops_per_token();
  for (size_t l = 0; l < layers.size(); ++l) {
    const LayerWork& work = layers[l];
    FLEXMOE_CHECK(work.routed != nullptr);
    const int layer = static_cast<int>(l);
    // Entries past the model's MoE layers are recirculation passes (the
    // serving path's second pass for overflow/re-routed tokens).
    const bool recirc = layer >= model_.num_moe_layers;
    // Shadow-parameter broadcasts (baseline FasterMoE) precede the layer.
    for (const ShadowBroadcast& bc : work.broadcasts) {
      if (!Alive(bc.root) || alive.size() < 2) continue;
      const CollectiveResult r =
          ExecBroadcast(cluster_, *profile_,
                        bc.bytes * GroupBandwidthScale(alive), bc.root, alive,
                        frontier);
      if (tr != nullptr) {
        tr->Span("shadow_bcast", "sync", bc.root, frontier, r.finish, "layer",
                 static_cast<double>(layer));
      }
      timing->sync_seconds += r.finish - frontier;
      frontier = r.finish;
    }

    const double phase0 = frontier;
    const CollectiveResult dispatch = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, false), frontier);
    TracePerGpuSpans(tr, recirc ? "recirc_dispatch" : "dispatch",
                     recirc ? "recirculation" : "a2a", phase0, dispatch,
                     layer);
    timing->a2a_seconds += dispatch.finish - phase0;

    const double compute_finish = RunExpertCompute(
        *work.routed, fwd_flops, dispatch.per_gpu_finish, timing,
        recirc ? "recirc_expert_compute" : "expert_compute", layer);
    timing->compute_seconds += std::max(0.0, compute_finish - dispatch.finish);

    const CollectiveResult combine = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, true),
        compute_finish);
    TracePerGpuSpans(tr, recirc ? "recirc_combine" : "combine",
                     recirc ? "recirculation" : "a2a", compute_finish,
                     combine, layer);
    timing->a2a_seconds += combine.finish - compute_finish;
    frontier = combine.finish;
  }
  return frontier;
}

StepTiming StepExecutor::ExecuteForward(const std::vector<LayerWork>& layers) {
  StepTiming timing;
  timing.per_gpu_expert_compute.assign(
      static_cast<size_t>(cluster_->num_gpus()), 0.0);
  timing.start = Frontier();

  // With no backward pass there is no shadow-gradient AllReduce to pay,
  // so a broadcast is the whole shadowing price.
  const std::vector<GpuId> alive = AliveGpus();
  double frontier = RunForwardLayers(layers, alive, timing.start, &timing);

  // Non-MoE forward compute (attention, dense FFNs, gate), scaled to the
  // forward share of the full-step cost by the same fwd/fwdbwd ratio the
  // expert networks exhibit. No optimizer, no gradient AllReduce.
  {
    const double fwd_fraction = model_.expert_fwd_flops_per_token() /
                                model_.expert_fwdbwd_flops_per_token();
    const double non_moe =
        NonMoEComputeSeconds(model_, *profile_) * fwd_fraction;
    double phase_finish = frontier;
    for (GpuId g = 0; g < cluster_->num_gpus(); ++g) {
      if (!Alive(g)) continue;
      const double scaled = non_moe * ComputeScale(g);
      const double start = cluster_->compute(g).Reserve(frontier, scaled);
      phase_finish = std::max(phase_finish, start + scaled);
    }
    if (obs::Tracer* tr = trace(); tr != nullptr) {
      tr->Span("non_moe", "compute", obs::kControlLane, frontier,
               phase_finish);
    }
    timing.non_moe_seconds += phase_finish - frontier;
    frontier = phase_finish;
  }

  timing.end = frontier;
  if (obs::Tracer* tr = trace(); tr != nullptr) {
    tr->Span("forward_pass", "step", obs::kControlLane, timing.start,
             timing.end, "layers", static_cast<double>(layers.size()));
  }
  return timing;
}

StepTiming StepExecutor::ExecuteStep(const std::vector<LayerWork>& layers,
                                     NcclGroupCache* group_cache) {
  StepTiming timing;
  timing.per_gpu_expert_compute.assign(
      static_cast<size_t>(cluster_->num_gpus()), 0.0);
  timing.start = Frontier();
  double frontier = timing.start;

  const double fwd_flops = model_.expert_fwd_flops_per_token();
  const double bwd_flops = model_.expert_fwdbwd_flops_per_token() - fwd_flops;

  // Membership is fixed for the duration of a step (the elastic controller
  // mutates health only at step boundaries), so the alive list is computed
  // once and shared by every shadow broadcast and the DP AllReduce below.
  const std::vector<GpuId> alive = AliveGpus();

  // ---- Forward pass over MoE layers ------------------------------------
  frontier = RunForwardLayers(layers, alive, frontier, &timing);

  // ---- Non-MoE compute (attention, dense FFNs, gate, optimizer) --------
  {
    const double non_moe = NonMoEComputeSeconds(model_, *profile_);
    double phase_finish = frontier;
    for (GpuId g = 0; g < cluster_->num_gpus(); ++g) {
      if (!Alive(g)) continue;
      const double scaled = non_moe * ComputeScale(g);
      const double start = cluster_->compute(g).Reserve(frontier, scaled);
      phase_finish = std::max(phase_finish, start + scaled);
    }
    if (obs::Tracer* tr = trace(); tr != nullptr) {
      tr->Span("non_moe", "compute", obs::kControlLane, frontier,
               phase_finish);
    }
    timing.non_moe_seconds += phase_finish - frontier;
    frontier = phase_finish;
  }

  // ---- Backward pass in reverse order -----------------------------------
  // A layer's expert gradients are final right after its backward compute,
  // so its replica AllReduces launch immediately and overlap with the
  // remaining (shallower) layers' backward work — the standard bucketed-
  // overlap of DDP, applied per expert. The step only stretches if syncs
  // outlast the backward pass.
  double sync_finish = frontier;
  obs::Tracer* tr = trace();
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    const LayerWork& work = *it;
    const int layer = static_cast<int>(layers.rend() - it) - 1;
    const double phase0 = frontier;
    const CollectiveResult dispatch = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, false), frontier);
    TracePerGpuSpans(tr, "grad_dispatch", "a2a", phase0, dispatch, layer);
    timing.a2a_seconds += dispatch.finish - phase0;

    const double compute_finish =
        RunExpertCompute(*work.routed, bwd_flops, dispatch.per_gpu_finish,
                         &timing, "expert_compute_bwd", layer);
    timing.compute_seconds += std::max(0.0, compute_finish - dispatch.finish);

    // Launch this layer's expert syncs, ordered by logical id (== expert
    // id): every GPU posts in the same ascending order, so the posting is
    // deadlock-free, and disjoint groups overlap through the stream model.
    std::vector<SyncOp> ops;
    if (work.placement != nullptr) {
      for (int e = 0; e < work.placement->num_experts(); ++e) {
        std::vector<GpuId> group = work.placement->HostGpus(e);
        if (health_ != nullptr) {
          group.erase(std::remove_if(group.begin(), group.end(),
                                     [this](GpuId g) { return !Alive(g); }),
                      group.end());
        }
        if (group.size() >= 2) {
          ops.push_back({e, std::move(group), model_.expert_grad_bytes()});
        }
      }
    }
    int extra_id = work.routed->num_experts;
    for (std::vector<GpuId> group : work.extra_sync_groups) {
      if (health_ != nullptr) {
        group.erase(std::remove_if(group.begin(), group.end(),
                                   [this](GpuId g) { return !Alive(g); }),
                    group.end());
      }
      if (group.size() >= 2) {
        ops.push_back({extra_id++, std::move(group),
                       model_.expert_grad_bytes()});
      }
    }
    for (const SyncOp& op : ops) {
      double earliest = compute_finish;
      if (group_cache != nullptr) {
        earliest += group_cache->Acquire(op.group);
      }
      const CollectiveResult r = ExecRingAllReduce(
          cluster_, *profile_, op.bytes * GroupBandwidthScale(op.group),
          op.group, earliest);
      if (tr != nullptr && !op.group.empty()) {
        tr->Span("expert_sync", "sync", op.group.front(), earliest, r.finish,
                 "expert", static_cast<double>(op.logical_id), "gpus",
                 static_cast<double>(op.group.size()));
      }
      sync_finish = std::max(sync_finish, r.finish);
      timing.sync_busy_seconds += r.finish - earliest;
    }

    const CollectiveResult combine = ExecAllToAll(
        cluster_, *profile_, DispatchBytes(*work.routed, true),
        compute_finish);
    TracePerGpuSpans(tr, "grad_combine", "a2a", compute_finish, combine,
                     layer);
    timing.a2a_seconds += combine.finish - compute_finish;
    frontier = combine.finish;
  }

  // The step ends when both the backward pass and the slowest expert sync
  // are done; only the non-overlapped tail counts as sync time.
  timing.sync_seconds += std::max(0.0, sync_finish - frontier);
  frontier = std::max(frontier, sync_finish);

  // ---- Data-parallel AllReduce of non-MoE gradients ----------------------
  // (every system pays it; tracked separately from the Eq. 9 expert sync).
  if (alive.size() >= 2) {
    const CollectiveResult dp = ExecRingAllReduce(
        cluster_, *profile_,
        model_.non_moe_params() * model_.grad_bytes *
            GroupBandwidthScale(alive),
        alive, frontier);
    if (tr != nullptr) {
      tr->Span("dp_sync", "sync", alive.front(), frontier, dp.finish, "gpus",
               static_cast<double>(alive.size()));
    }
    timing.dp_sync_seconds += dp.finish - frontier;
    frontier = dp.finish;
  }

  timing.end = frontier;
  if (tr != nullptr) {
    tr->Span("train_step", "step", obs::kControlLane, timing.start, timing.end,
             "layers", static_cast<double>(layers.size()));
  }
  return timing;
}

}  // namespace flexmoe
