// FlexMoESystem: the full FlexMoE runtime (paper Figure 4) assembled from
// the building blocks — per-layer placements with vExperts, the flexible
// token Router, the discrete-event step execution, the Scheduler + Policy
// Maker monitoring loop, and the best-effort PlacementExecutor applying
// Expand/Shrink/Migrate on a background stream.

#ifndef FLEXMOE_CORE_FLEXMOE_H_
#define FLEXMOE_CORE_FLEXMOE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "collective/nccl_group.h"
#include "core/cost_model.h"
#include "core/scheduler.h"
#include "core/step_executor.h"
#include "core/system.h"
#include "elastic/elastic_controller.h"
#include "placement/executor.h"

namespace flexmoe {

/// \brief FlexMoE configuration.
struct FlexMoEOptions {
  ModelConfig model;
  int num_gpus = 64;
  /// vExpert slots per GPU (0 = auto).
  int slots_per_gpu = 0;
  SchedulerOptions scheduler;
  PolicyMakerOptions policy;
  ExecutorOptions executor;
  NcclGroupCache::Options group_cache;
  /// Resync threshold: if a layer's pending-op queue exceeds this, stale
  /// plans are dropped and the target placement resyncs to the live one.
  int max_pending_ops = 64;
  /// Fault handling (elastic drain; FlexMoE never restarts).
  ElasticControllerOptions elastic;
  /// Chunked A2A/compute overlap (core/step_executor.h). Placement
  /// planning always scores under the serial Eq. 5 combiner regardless of
  /// this depth (DESIGN.md §12.2). chunks == 0 enables auto-K: the
  /// Scheduler plans a per-layer depth from the overhead-honest cost
  /// model and the system threads it into every layer's execution
  /// (DESIGN.md §12).
  PipelineOptions pipeline;

  Status Validate() const;
};

/// \brief The FlexMoE training system.
class FlexMoESystem : public MoESystem {
 public:
  /// `topo` and `profile` must outlive the system.
  static Result<std::unique_ptr<FlexMoESystem>> Create(
      const FlexMoEOptions& options, const Topology* topo,
      const HardwareProfile* profile);

  std::string name() const override { return "FlexMoE"; }
  StepMetrics RunStep(
      const std::vector<Assignment>& layer_assignments) override;
  StepMetrics ServeMicrobatch(
      const std::vector<Assignment>& layer_assignments) override;
  const TrainingStats& stats() const override { return stats_; }
  const ClusterState& cluster() const override { return cluster_; }
  Status InstallFaultPlan(const FaultPlan& plan) override;
  const ClusterHealth* cluster_health() const override {
    return &elastic_.health();
  }
  void SetObservability(obs::Observability* obs) override;

  const Placement& live_placement(int layer) const;
  const Placement& target_placement(int layer) const;
  const PlacementExecutor& executor(int layer) const {
    return executors_[static_cast<size_t>(layer)];
  }
  const NcclGroupCache& group_cache() const { return group_cache_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  FlexMoESystem(const FlexMoEOptions& options, const Topology* topo,
                const HardwareProfile* profile, NcclGroupCache group_cache,
                std::vector<Placement> initial);

  /// Shared body of RunStep / ServeMicrobatch: the elastic boundary, the
  /// placement-adjustment loop, routing, and the scheduler all behave
  /// identically — only the engine pass differs (full training step vs
  /// forward-only serving pass).
  StepMetrics RunStepImpl(const std::vector<Assignment>& layer_assignments,
                          bool serving);

  FlexMoEOptions options_;
  const Topology* topo_;
  const HardwareProfile* profile_;
  ClusterState cluster_;
  ElasticController elastic_;
  CostModel cost_model_;
  PolicyMaker policy_maker_;
  Scheduler scheduler_;
  NcclGroupCache group_cache_;
  StepExecutor step_executor_;

  std::vector<Placement> live_;
  std::vector<Placement> target_;
  std::vector<PlacementExecutor> executors_;

  /// Per-layer planning backoff: a trigger that accepts no plan doubles
  /// the layer's cooldown (capped), an accepted plan resets it. Avoids
  /// re-running the full candidate search every step once the placement
  /// sits at the feasibility floor.
  std::vector<int64_t> next_plan_step_;
  std::vector<int> plan_backoff_;

  /// Auto-K (options_.pipeline.chunks == 0 — DESIGN.md §12): the chunk
  /// depth each layer currently executes with. 0 = not yet planned; the
  /// first step a layer is routed picks an initial depth directly from the
  /// routed assignment, and every scheduler trigger refreshes it from the
  /// planned placement. Unused (empty checks aside) under static K.
  std::vector<int> layer_chunks_;

  TrainingStats stats_;
  int64_t step_ = 0;
  obs::Observability* obs_ = nullptr;
};

}  // namespace flexmoe

#endif  // FLEXMOE_CORE_FLEXMOE_H_
