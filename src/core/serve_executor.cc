#include "core/serve_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/string_util.h"

namespace flexmoe {

Status ServingOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (arrival_rate_rps <= 0.0) {
    return Status::InvalidArgument("serving.arrival_rate_rps must be > 0");
  }
  if (tokens_per_request <= 0) {
    return Status::InvalidArgument("serving.tokens_per_request must be > 0");
  }
  if (slo_seconds <= 0.0) {
    return Status::InvalidArgument("serving.slo_seconds must be > 0");
  }
  if (batch_window_seconds <= 0.0) {
    return Status::InvalidArgument("serving.batch_window_seconds must be > 0");
  }
  if (max_batch_tokens < 0) {
    return Status::InvalidArgument("serving.max_batch_tokens must be >= 0");
  }
  return Status::OK();
}

Assignment ScaleAssignmentTo(const Assignment& src, int64_t target_total) {
  FLEXMOE_CHECK(target_total >= 0);
  const int64_t src_total = src.Total();
  Assignment out(src.num_experts(), src.num_gpus());
  if (src_total <= 0 || target_total == 0) return out;

  // Floor of the exact proportional share per cell; the remainders decide
  // who gets the leftover units (largest remainder, ties by cell index
  // ascending — a pure function of the inputs).
  struct Remainder {
    int64_t rem;  // numerator of the fractional part, in units of 1/src_total
    int expert;
    int gpu;
  };
  std::vector<Remainder> remainders;
  int64_t assigned = 0;
  for (int e = 0; e < src.num_experts(); ++e) {
    const int64_t* row = src.row(e);
    for (int g = 0; g < src.num_gpus(); ++g) {
      const int64_t count = row[g];
      if (count <= 0) continue;
      // count, target_total <= ~2^31 in practice; the product fits int64
      // for every shape the harness builds (tokens_per_gpu * gpus * top_k).
      const int64_t numer = count * target_total;
      const int64_t floor_share = numer / src_total;
      const int64_t rem = numer % src_total;
      if (floor_share > 0) out.set(e, g, floor_share);
      assigned += floor_share;
      if (rem > 0) remainders.push_back({rem, e, g});
    }
  }
  int64_t leftover = target_total - assigned;
  FLEXMOE_CHECK(leftover >= 0 &&
                leftover <= static_cast<int64_t>(remainders.size()));
  std::sort(remainders.begin(), remainders.end(),
            [](const Remainder& a, const Remainder& b) {
              if (a.rem != b.rem) return a.rem > b.rem;
              if (a.expert != b.expert) return a.expert < b.expert;
              return a.gpu < b.gpu;
            });
  for (int64_t i = 0; i < leftover; ++i) {
    const Remainder& r = remainders[static_cast<size_t>(i)];
    out.add(r.expert, r.gpu, 1);
  }
  return out;
}

namespace {

double NearestRankQuantile(const std::vector<double>& sorted_ascending,
                           double q) {
  if (sorted_ascending.empty()) return 0.0;
  const size_t n = sorted_ascending.size();
  size_t rank =
      static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::max<size_t>(1, std::min(rank, n));
  return sorted_ascending[rank - 1];
}

}  // namespace

ServeExecutor::ServeExecutor(MoESystem* system, TraceSource* source,
                             RequestSource* requests,
                             const ServingOptions& options,
                             int64_t max_batch_tokens, int top_k)
    : system_(system),
      source_(source),
      requests_(requests),
      options_(options),
      max_batch_tokens_(max_batch_tokens),
      top_k_(top_k) {
  FLEXMOE_CHECK(system != nullptr && source != nullptr && requests != nullptr);
  FLEXMOE_CHECK(max_batch_tokens > 0);
  FLEXMOE_CHECK(top_k > 0);
}

Result<ServingReport> ServeExecutor::Run(int num_batches) {
  if (num_batches <= 0) {
    return Status::InvalidArgument("num_batches must be > 0");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();

  ServingReport report;
  // EDF priority queue: after an outage the backlog can run to millions
  // of requests, so admission must not re-sort the whole queue per batch.
  const auto edf_after = [](const ServeRequest& a, const ServeRequest& b) {
    if (a.deadline_seconds != b.deadline_seconds) {
      return a.deadline_seconds > b.deadline_seconds;
    }
    if (a.arrival_seconds != b.arrival_seconds) {
      return a.arrival_seconds > b.arrival_seconds;
    }
    return a.id > b.id;
  };
  std::priority_queue<ServeRequest, std::vector<ServeRequest>,
                      decltype(edf_after)>
      queue(edf_after);
  std::vector<double> latencies;
  double engine_idle = 0.0;
  double first_launch = -1.0;
  double last_end = 0.0;
  double batch_seconds_sum = 0.0;
  int64_t batch_tokens_sum = 0;

  auto pull_arrivals_upto = [&](double t) {
    while (requests_->PeekArrival() <= t) {
      ServeRequest req = requests_->Next();
      report.requests_arrived += 1;
      report.tokens_arrived += req.tokens;
      queue.push(req);
    }
  };

  for (int b = 0; b < num_batches; ++b) {
    ServeBatchRecord record;
    record.batch = b;
    record.engine_idle = engine_idle;

    pull_arrivals_upto(engine_idle);
    record.backlog_at_idle = static_cast<int>(queue.size());
    double launch;
    if (!queue.empty()) {
      // Work-conserving: the backlog already waited out the previous
      // batch's execution — that was its batching window.
      launch = engine_idle;
    } else {
      // Idle engine: the window opens at the first arrival and the batch
      // collects everything landing within it.
      const double t0 = std::max(engine_idle, requests_->PeekArrival());
      launch = t0 + options_.batch_window_seconds;
      pull_arrivals_upto(launch);
    }

    // EDF admission under the token cap; at least one request always
    // enters (requests are sized far below the cap by construction).
    std::vector<ServeRequest> admitted;
    int64_t admitted_tokens = 0;
    record.max_admitted_deadline = -kInf;
    while (!queue.empty()) {
      const ServeRequest& req = queue.top();
      if (!admitted.empty() &&
          admitted_tokens + req.tokens > max_batch_tokens_) {
        break;
      }
      admitted_tokens += req.tokens;
      record.max_admitted_deadline =
          std::max(record.max_admitted_deadline, req.deadline_seconds);
      admitted.push_back(req);
      queue.pop();
    }
    FLEXMOE_CHECK(!admitted.empty());

    record.launch = launch;
    record.tokens = admitted_tokens;
    record.num_requests = static_cast<int>(admitted.size());
    record.left_waiting = static_cast<int>(queue.size());
    // The heap top is the earliest remaining deadline — exactly the EDF
    // invariant witness.
    record.min_waiting_deadline =
        queue.empty() ? kInf : queue.top().deadline_seconds;

    // Shape the microbatch's routing from the next source step, rescaled
    // to the admitted volume (tokens -> top_k assignments each).
    if (source_->StepsRemaining() == 0) {
      return Status::InvalidArgument(
          StrFormat("trace source exhausted at serving batch %d", b));
    }
    const std::vector<Assignment> step = source_->NextStep();
    trace_hash_ = HashStep(step, trace_hash_);
    std::vector<Assignment> scaled;
    scaled.reserve(step.size());
    for (const Assignment& layer : step) {
      scaled.push_back(ScaleAssignmentTo(layer, admitted_tokens * top_k_));
    }

    const StepMetrics metrics = system_->ServeMicrobatch(scaled);
    const double end = launch + metrics.step_seconds;
    engine_idle = end;
    record.end = end;
    if (first_launch < 0.0) first_launch = launch;
    last_end = end;
    report.batches += 1;
    report.tokens_recirculated += metrics.tokens_recirculated;
    batch_seconds_sum += metrics.step_seconds;
    batch_tokens_sum += admitted_tokens;

    if (metrics.tokens_dropped > 0) {
      // A fault hit this batch: its responses are lost, but the admitted
      // requests are not — the whole batch re-enters the queue (original
      // arrivals and deadlines intact) and re-executes later.
      record.failed = true;
      report.failed_batches += 1;
      for (const ServeRequest& req : admitted) queue.push(req);
    } else {
      for (const ServeRequest& req : admitted) {
        const double latency = end - req.arrival_seconds;
        latencies.push_back(latency);
        report.requests_completed += 1;
        report.tokens_completed += req.tokens;
        if (end > req.deadline_seconds) report.slo_violations += 1;
      }
    }
    log_.push_back(record);
  }

  report.requests_queued_at_end = static_cast<int64_t>(queue.size());
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    report.mean_latency_seconds =
        sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    report.p50_latency_seconds = NearestRankQuantile(latencies, 0.50);
    report.p99_latency_seconds = NearestRankQuantile(latencies, 0.99);
    report.max_latency_seconds = latencies.back();
  }
  report.slo_attainment =
      report.requests_completed > 0
          ? static_cast<double>(report.requests_completed -
                                report.slo_violations) /
                static_cast<double>(report.requests_completed)
          : 1.0;
  report.mean_batch_seconds =
      batch_seconds_sum / static_cast<double>(report.batches);
  report.mean_batch_tokens = static_cast<double>(batch_tokens_sum) /
                             static_cast<double>(report.batches);
  report.span_seconds = std::max(0.0, last_end - first_launch);
  report.served_tokens_per_sec =
      report.span_seconds > 0.0
          ? static_cast<double>(report.tokens_completed) / report.span_seconds
          : 0.0;
  return report;
}

}  // namespace flexmoe
