#include "core/serve_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/string_util.h"

namespace flexmoe {

Status ServingOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (arrival_rate_rps <= 0.0) {
    return Status::InvalidArgument("serving.arrival_rate_rps must be > 0");
  }
  if (tokens_per_request <= 0) {
    return Status::InvalidArgument("serving.tokens_per_request must be > 0");
  }
  if (slo_seconds <= 0.0) {
    return Status::InvalidArgument("serving.slo_seconds must be > 0");
  }
  if (batch_window_seconds <= 0.0) {
    return Status::InvalidArgument("serving.batch_window_seconds must be > 0");
  }
  if (max_batch_tokens < 0) {
    return Status::InvalidArgument("serving.max_batch_tokens must be >= 0");
  }
  if (admission_policy != "edf" && admission_policy != "sjf") {
    return Status::InvalidArgument(StrFormat(
        "serving.admission_policy '%s' unknown (want edf|sjf)",
        admission_policy.c_str()));
  }
  return size_mix.Validate();
}

Assignment ScaleAssignmentTo(const Assignment& src, int64_t target_total) {
  FLEXMOE_CHECK(target_total >= 0);
  const int64_t src_total = src.Total();
  Assignment out(src.num_experts(), src.num_gpus());
  if (src_total <= 0 || target_total == 0) return out;

  // Floor of the exact proportional share per cell; the remainders decide
  // who gets the leftover units (largest remainder, ties by cell index
  // ascending — a pure function of the inputs).
  struct Remainder {
    int64_t rem;  // numerator of the fractional part, in units of 1/src_total
    int expert;
    int gpu;
  };
  std::vector<Remainder> remainders;
  int64_t assigned = 0;
  for (int e = 0; e < src.num_experts(); ++e) {
    const int64_t* row = src.row(e);
    for (int g = 0; g < src.num_gpus(); ++g) {
      const int64_t count = row[g];
      if (count <= 0) continue;
      // The per-cell product can exceed int64 for large traces rescaled to
      // large batches (count and target_total can each approach 2^33), so
      // it is taken in 128-bit arithmetic; the quotient is <= target_total
      // and the remainder < src_total, both of which fit int64.
      const __int128 numer =
          static_cast<__int128>(count) * static_cast<__int128>(target_total);
      const int64_t floor_share =
          static_cast<int64_t>(numer / static_cast<__int128>(src_total));
      const int64_t rem =
          static_cast<int64_t>(numer % static_cast<__int128>(src_total));
      if (floor_share > 0) out.set(e, g, floor_share);
      assigned += floor_share;
      if (rem > 0) remainders.push_back({rem, e, g});
    }
  }
  int64_t leftover = target_total - assigned;
  FLEXMOE_CHECK(leftover >= 0 &&
                leftover <= static_cast<int64_t>(remainders.size()));
  std::sort(remainders.begin(), remainders.end(),
            [](const Remainder& a, const Remainder& b) {
              if (a.rem != b.rem) return a.rem > b.rem;
              if (a.expert != b.expert) return a.expert < b.expert;
              return a.gpu < b.gpu;
            });
  for (int64_t i = 0; i < leftover; ++i) {
    const Remainder& r = remainders[static_cast<size_t>(i)];
    out.add(r.expert, r.gpu, 1);
  }
  return out;
}

namespace {

double NearestRankQuantile(const std::vector<double>& sorted_ascending,
                           double q) {
  if (sorted_ascending.empty()) return 0.0;
  const size_t n = sorted_ascending.size();
  size_t rank =
      static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::max<size_t>(1, std::min(rank, n));
  return sorted_ascending[rank - 1];
}

/// A request waiting in the admission queue; `remaining` shrinks as
/// cap-sized chunks of an oversized request execute.
struct QueuedRequest {
  ServeRequest req;
  int64_t remaining = 0;
};

/// One admitted entry of the batch being formed.
struct AdmittedChunk {
  ServeRequest req;
  int64_t chunk = 0;             ///< tokens executing in this batch
  int64_t remaining_before = 0;  ///< remaining at admission (>= chunk)
};

/// Rounds of the form-a-batch loop in which every queued request was shed
/// before giving up: a pure safety valve against a configuration whose
/// every request is hopeless at birth (SLO below the best-case latency of
/// the smallest request), which would otherwise never form a batch.
constexpr int64_t kMaxShedOnlyRounds = 1 << 20;

}  // namespace

ServeExecutor::ServeExecutor(MoESystem* system, TraceSource* source,
                             RequestSource* requests,
                             const ServingOptions& options,
                             int64_t max_batch_tokens, int top_k,
                             LatencyEstimator estimator)
    : system_(system),
      source_(source),
      requests_(requests),
      options_(options),
      max_batch_tokens_(max_batch_tokens),
      top_k_(top_k),
      estimator_(std::move(estimator)) {
  FLEXMOE_CHECK(system != nullptr && source != nullptr && requests != nullptr);
}

double ServeExecutor::BestCaseServiceSeconds(int64_t remaining) const {
  if (remaining <= 0) return 0.0;
  // An oversized request drains as full-cap chunks plus a tail chunk, one
  // batch each; a fitting request is one estimator call. The estimator is
  // the cost model's contention-free forward time, so this is the floor of
  // any actual service — shedding on it rejects only hopeless requests.
  // The full-chunk estimate is a run constant (cached: the shed check runs
  // once per popped request, and an outage backlog runs to millions).
  const int64_t full = remaining / max_batch_tokens_;
  const int64_t tail = remaining % max_batch_tokens_;
  double seconds = static_cast<double>(full) * cap_chunk_seconds_;
  if (tail > 0) seconds += estimator_(tail);
  return seconds;
}

Result<ServingReport> ServeExecutor::Run(int num_batches) {
  if (num_batches <= 0) {
    return Status::InvalidArgument("num_batches must be > 0");
  }
  // Resolved-sizing validation (the harness derives 0 into a real cap;
  // a direct caller that forgot must get a status, not a crash).
  if (max_batch_tokens_ <= 0) {
    return Status::InvalidArgument(
        "serving max_batch_tokens must be resolved to > 0 (0 is only a "
        "derive-me placeholder at the experiment level)");
  }
  if (top_k_ <= 0) {
    return Status::InvalidArgument("serving top_k must be > 0");
  }
  {
    // Validate with the master switch forced on: an executor constructed
    // at all IS serving, so a direct caller's bad policy/mix must not
    // slip past Validate()'s disabled-mode early-out.
    ServingOptions check = options_;
    check.enabled = true;
    FLEXMOE_RETURN_IF_ERROR(check.Validate());
  }
  if (options_.shed_unreachable && !estimator_) {
    return Status::InvalidArgument(
        "shed_unreachable requires a forward-latency estimator");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const bool sjf = options_.admission_policy == "sjf";
  const bool shedding = options_.shed_unreachable;

  ServingReport report;
  // Priority queue in admission order: after an outage the backlog can run
  // to millions of requests, so admission must not re-sort the whole queue
  // per batch. EDF orders by (deadline, arrival, id); SJF by remaining
  // size first with the same tie-break, so draining order stays a pure
  // function of the stream.
  const auto admit_after = [sjf](const QueuedRequest& a,
                                 const QueuedRequest& b) {
    if (sjf && a.remaining != b.remaining) return a.remaining > b.remaining;
    if (a.req.deadline_seconds != b.req.deadline_seconds) {
      return a.req.deadline_seconds > b.req.deadline_seconds;
    }
    if (a.req.arrival_seconds != b.req.arrival_seconds) {
      return a.req.arrival_seconds > b.req.arrival_seconds;
    }
    return a.req.id > b.req.id;
  };
  std::priority_queue<QueuedRequest, std::vector<QueuedRequest>,
                      decltype(admit_after)>
      queue(admit_after);
  std::vector<double> latencies;
  double engine_idle = 0.0;
  double first_launch = -1.0;
  double last_end = 0.0;
  double batch_seconds_sum = 0.0;
  int64_t batch_tokens_sum = 0;

  auto pull_arrivals_upto = [&](double t) {
    while (requests_->PeekArrival() <= t) {
      ServeRequest req = requests_->Next();
      report.requests_arrived += 1;
      report.tokens_arrived += req.tokens;
      queue.push({req, req.tokens});
    }
  };

  for (int b = 0; b < num_batches; ++b) {
    // Refreshed per batch, not cached across the run: the estimator is a
    // function of cluster health (alive count, placement), and a floor
    // memoized before a failover would understate post-failover service
    // times — shedding would then admit provably-unreachable requests.
    cap_chunk_seconds_ = shedding ? estimator_(max_batch_tokens_) : 0.0;

    ServeBatchRecord record;
    record.batch = b;
    record.engine_idle = engine_idle;

    pull_arrivals_upto(engine_idle);
    record.backlog_at_idle = static_cast<int>(queue.size());

    // Form a non-empty batch. A round either admits something, or shed
    // every queued request and loops to wait for new arrivals.
    std::vector<AdmittedChunk> admitted;
    int64_t admitted_tokens = 0;
    record.max_admitted_deadline = -kInf;
    record.max_admitted_remaining = 0;
    double launch = engine_idle;
    int64_t shed_only_rounds = 0;
    while (true) {
      if (!queue.empty()) {
        // Work-conserving: the backlog already waited out the previous
        // batch's execution — that was its batching window.
        launch = engine_idle;
      } else {
        // Idle engine: the window opens at the first arrival and the
        // batch collects everything landing within it.
        const double t0 = std::max(engine_idle, requests_->PeekArrival());
        launch = t0 + options_.batch_window_seconds;
        pull_arrivals_upto(launch);
      }

      // Admission under the token cap, in policy order.
      while (!queue.empty()) {
        const QueuedRequest& top = queue.top();
        if (shedding && launch + BestCaseServiceSeconds(top.remaining) >
                            top.req.deadline_seconds) {
          // The deadline precedes even a best-case completion: reject the
          // request (counted, never executed) instead of serving it dead.
          report.requests_shed += 1;
          report.tokens_shed += top.remaining;
          record.shed += 1;
          queue.pop();
          continue;
        }
        const int64_t space = max_batch_tokens_ - admitted_tokens;
        if (top.remaining <= space) {
          record.max_admitted_deadline =
              std::max(record.max_admitted_deadline, top.req.deadline_seconds);
          record.max_admitted_remaining =
              std::max(record.max_admitted_remaining, top.remaining);
          admitted.push_back({top.req, top.remaining, top.remaining});
          admitted_tokens += top.remaining;
          queue.pop();
          continue;
        }
        if (admitted.empty()) {
          // Oversized head fronting an empty batch: admit a cap-sized solo
          // chunk so the request drains across consecutive batches instead
          // of deadlocking the engine (the remainder re-enters the queue
          // after execution, deadline and arrival intact).
          const QueuedRequest head = queue.top();
          queue.pop();
          record.max_admitted_deadline = std::max(record.max_admitted_deadline,
                                                  head.req.deadline_seconds);
          record.max_admitted_remaining =
              std::max(record.max_admitted_remaining, head.remaining);
          record.chunked += 1;
          report.chunked_admissions += 1;
          admitted.push_back({head.req, space, head.remaining});
          admitted_tokens += space;  // batch is now exactly full
        }
        break;
      }
      if (!admitted.empty()) break;
      if (++shed_only_rounds > kMaxShedOnlyRounds) {
        return Status::InvalidArgument(StrFormat(
            "shedding rejected every request for %lld consecutive rounds at "
            "serving batch %d — the SLO is below the best-case latency of "
            "the whole size mix",
            static_cast<long long>(shed_only_rounds), b));
      }
    }

    record.launch = launch;
    record.tokens = admitted_tokens;
    record.num_requests = static_cast<int>(admitted.size());
    record.left_waiting = static_cast<int>(queue.size());
    // The heap top is the first remaining request in admission order —
    // under EDF the earliest waiting deadline, under SJF the smallest
    // waiting remainder: exactly the active policy's invariant witness.
    record.min_waiting_deadline =
        queue.empty() ? kInf : queue.top().req.deadline_seconds;
    record.min_waiting_remaining =
        queue.empty() ? std::numeric_limits<int64_t>::max()
                      : queue.top().remaining;

    // Shape the microbatch's routing from the next source step, rescaled
    // to the admitted volume (tokens -> top_k assignments each).
    if (source_->StepsRemaining() == 0) {
      return Status::InvalidArgument(
          StrFormat("trace source exhausted at serving batch %d", b));
    }
    const std::vector<Assignment> step = source_->NextStep();
    trace_hash_ = HashStep(step, trace_hash_);
    std::vector<Assignment> scaled;
    scaled.reserve(step.size());
    for (const Assignment& layer : step) {
      scaled.push_back(ScaleAssignmentTo(layer, admitted_tokens * top_k_));
    }

    const StepMetrics metrics = system_->ServeMicrobatch(scaled);
    const double end = launch + metrics.step_seconds;
    if (obs::Tracer* tr = obs::TracerOf(obs_); tr != nullptr) {
      // Serving-lane timeline: the admission window (idle engine waiting
      // for the batch to form) followed by the batch's execution, plus a
      // backlog counter track sampled at each launch.
      if (launch > engine_idle) {
        tr->Span("batch_window", "serving", obs::kServingLane, engine_idle,
                 launch, "batch", static_cast<double>(b));
      }
      tr->Span("serve_batch", "serving", obs::kServingLane, launch, end,
               "tokens", static_cast<double>(admitted_tokens), "requests",
               static_cast<double>(admitted.size()));
      tr->Counter("serve_backlog", obs::kServingLane, launch, "requests",
                  static_cast<double>(record.left_waiting));
      if (record.shed > 0) {
        tr->Instant("requests_shed", "serving", obs::kServingLane, launch,
                    "count", static_cast<double>(record.shed));
      }
      if (metrics.tokens_dropped > 0) {
        tr->Instant("batch_failed", "serving", obs::kServingLane, end,
                    "batch", static_cast<double>(b));
      }
    }
    engine_idle = end;
    record.end = end;
    if (first_launch < 0.0) first_launch = launch;
    last_end = end;
    report.batches += 1;
    report.tokens_recirculated += metrics.tokens_recirculated;
    batch_seconds_sum += metrics.step_seconds;
    batch_tokens_sum += admitted_tokens;

    if (metrics.tokens_dropped > 0) {
      // A fault hit this batch: its responses are lost, but the admitted
      // requests are not — every chunk re-enters the queue (original
      // arrivals and deadlines intact) and re-executes later.
      record.failed = true;
      report.failed_batches += 1;
      for (const AdmittedChunk& entry : admitted) {
        queue.push({entry.req, entry.remaining_before});
      }
    } else {
      for (const AdmittedChunk& entry : admitted) {
        report.tokens_completed += entry.chunk;
        const int64_t remaining_after = entry.remaining_before - entry.chunk;
        if (remaining_after > 0) {
          // Partial chunk of an oversized request: the remainder waits for
          // the next batch; the request completes when its last chunk does.
          queue.push({entry.req, remaining_after});
          continue;
        }
        const double latency = end - entry.req.arrival_seconds;
        latencies.push_back(latency);
        if (obs::MetricsRegistry* m = obs::MetricsOf(obs_); m != nullptr) {
          m->Observe("serve.latency_seconds", latency);
        }
        report.requests_completed += 1;
        if (end > entry.req.deadline_seconds) {
          report.requests_completed_late += 1;
        } else {
          report.tokens_completed_within_slo += entry.req.tokens;
        }
      }
    }
    log_.push_back(record);
  }

  // Horizon-end accounting over the surviving backlog: a queued request
  // whose deadline already passed can never meet it — it counts as a
  // violation instead of silently inflating attainment (the survivor-bias
  // fix), while still-feasible queued requests are censored, not violated.
  const double horizon = last_end;
  while (!queue.empty()) {
    const QueuedRequest& left = queue.top();
    report.requests_queued_at_end += 1;
    report.tokens_queued_at_end += left.remaining;
    if (left.req.deadline_seconds <= horizon) {
      report.requests_queued_past_deadline += 1;
    }
    queue.pop();
  }

  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    report.mean_latency_seconds =
        sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    report.p50_latency_seconds = NearestRankQuantile(latencies, 0.50);
    report.p99_latency_seconds = NearestRankQuantile(latencies, 0.99);
    report.max_latency_seconds = latencies.back();
  }
  report.slo_violations = report.requests_completed_late +
                          report.requests_shed +
                          report.requests_queued_past_deadline;
  const int64_t decided = report.requests_completed + report.requests_shed +
                          report.requests_queued_past_deadline;
  report.slo_attainment =
      decided > 0
          ? static_cast<double>(report.requests_completed -
                                report.requests_completed_late) /
                static_cast<double>(decided)
          : 1.0;
  report.mean_batch_seconds =
      batch_seconds_sum / static_cast<double>(report.batches);
  report.mean_batch_tokens = static_cast<double>(batch_tokens_sum) /
                             static_cast<double>(report.batches);
  report.span_seconds = std::max(0.0, last_end - first_launch);
  report.served_tokens_per_sec =
      report.span_seconds > 0.0
          ? static_cast<double>(report.tokens_completed) / report.span_seconds
          : 0.0;
  report.goodput_tokens_per_sec =
      report.span_seconds > 0.0
          ? static_cast<double>(report.tokens_completed_within_slo) /
                report.span_seconds
          : 0.0;
  if (obs::MetricsRegistry* m = obs::MetricsOf(obs_); m != nullptr) {
    m->Add("serve.batches", report.batches);
    m->Add("serve.requests_arrived", report.requests_arrived);
    m->Add("serve.requests_completed", report.requests_completed);
    if (report.requests_shed > 0) {
      m->Add("serve.requests_shed", report.requests_shed);
    }
    if (report.failed_batches > 0) {
      m->Add("serve.failed_batches", report.failed_batches);
    }
    if (report.chunked_admissions > 0) {
      m->Add("serve.chunked_admissions", report.chunked_admissions);
    }
    m->Add("serve.tokens_completed", report.tokens_completed);
    m->Set("serve.slo_attainment", report.slo_attainment);
    m->Set("serve.goodput_tokens_per_sec", report.goodput_tokens_per_sec);
  }
  return report;
}

}  // namespace flexmoe
