// Hardware profile: the quantities the paper obtains by profiling its
// physical cluster (TPS — tokens/second per expert, Bw — pairwise GPU
// bandwidth, BPS — AllReduce bytes/second per device group).
//
// A HardwareProfile starts from analytic values derived from the Topology
// and a GpuSpec, and the collective::Profiler can overwrite individual
// entries with values fitted against the discrete-event engine, mirroring
// the paper's "profiling-based approach" (Section 3.4).

#ifndef FLEXMOE_TOPOLOGY_PROFILE_H_
#define FLEXMOE_TOPOLOGY_PROFILE_H_

#include <map>
#include <vector>

#include "topology/topology.h"
#include "util/matrix.h"
#include "util/status.h"

namespace flexmoe {

/// \brief Compute characteristics of a single accelerator.
struct GpuSpec {
  /// Peak dense throughput in FLOP/s (A100 BF16 tensor-core peak).
  double peak_flops = 312e12;
  /// Achieved fraction of peak for FFN-style GEMMs.
  double efficiency = 0.45;
  /// Fixed per-kernel launch/dispatch overhead in seconds.
  double kernel_overhead_sec = 8e-6;
  /// Device memory (A100 80 GB); used for placement feasibility checks.
  double memory_bytes = 80e9;

  Status Validate() const;
};

/// \brief Shape key for per-group AllReduce calibration entries.
///
/// Groups with the same size and node span behave identically in a
/// homogeneous cluster, so calibration is keyed on this signature rather
/// than the concrete member list.
struct GroupSignature {
  int num_gpus = 0;
  int num_nodes = 0;

  bool operator<(const GroupSignature& o) const {
    if (num_gpus != o.num_gpus) return num_gpus < o.num_gpus;
    return num_nodes < o.num_nodes;
  }
  bool operator==(const GroupSignature& o) const {
    return num_gpus == o.num_gpus && num_nodes == o.num_nodes;
  }
};

/// \brief Linear time model `time = alpha + bytes * beta` for one path.
struct LinearCost {
  double alpha_sec = 0.0;       ///< fixed cost
  double beta_sec_per_byte = 0; ///< marginal cost
  double Seconds(double bytes) const { return alpha_sec + bytes * beta_sec_per_byte; }
};

/// \brief Profiled cluster performance model consumed by core::CostModel.
class HardwareProfile {
 public:
  /// Builds analytic defaults for `topo` and `spec`. The topology pointer
  /// must outlive the profile.
  HardwareProfile(const Topology* topo, const GpuSpec& spec);

  const Topology& topology() const { return *topo_; }
  const GpuSpec& gpu_spec() const { return spec_; }

  // --- Compute (paper's TPS) -------------------------------------------

  /// Seconds for one expert to process `tokens` tokens of a fwd+bwd pass,
  /// given the expert's per-token FLOP count.
  double ComputeSeconds(double tokens, double flops_per_token) const;

  /// Tokens/second throughput for an expert (the paper's TPS), marginal
  /// rate excluding kernel overhead.
  double TokensPerSecond(double flops_per_token) const;

  // --- Point-to-point (paper's Bw) --------------------------------------

  /// Seconds to move `bytes` from `src` to `dst` over the direct path.
  double P2pSeconds(double bytes, GpuId src, GpuId dst) const;

  /// Effective path bandwidth in bytes/s (after calibration scaling).
  /// O(1) flat-cache read — this is the innermost call of every A2A
  /// estimate and collective execution.
  double BandwidthBytesPerSec(GpuId src, GpuId dst) const {
    return bandwidth_cache_(src, dst);
  }

  double LatencySeconds(GpuId src, GpuId dst) const {
    return latency_cache_(src, dst);
  }

  // --- Hierarchical A2A mode (DESIGN.md Section 10) ---------------------

  /// Opt-in large-EP estimation mode: CostModel::A2ASeconds aggregates
  /// cross-node traffic per source NODE (token counts folded in integer
  /// arithmetic, one bandwidth term per remote node) instead of per source
  /// GPU. The discrete-event engine stays pair-exact — only the planner's
  /// Eq. 8 estimate coarsens. Off by default: the flat path is
  /// byte-identical to the pre-hierarchical cost model.
  void set_hierarchical_a2a(bool enabled) { hierarchical_a2a_ = enabled; }
  bool hierarchical_a2a() const { return hierarchical_a2a_; }

  /// Effective bandwidth of the src_node -> dst tier. The cluster is
  /// homogeneous per link class, so any member of src_node other than dst
  /// itself carries the class-exact value.
  double NodeBandwidthBytesPerSec(NodeId src_node, GpuId dst) const;
  double NodeLatencySeconds(NodeId src_node, GpuId dst) const;

  // --- AllReduce (paper's BPS) ------------------------------------------

  /// Seconds to AllReduce `bytes` across `group` (ring algorithm unless a
  /// calibrated entry exists for the group's signature).
  double AllReduceSeconds(double bytes, const std::vector<GpuId>& group) const;

  /// Bytes/second delivered by AllReduce on `group` at message size `bytes`
  /// — the paper's BPS(G').
  double AllReduceBps(double bytes, const std::vector<GpuId>& group) const;

  /// Per-kernel launch overhead charged by ComputeSeconds — the calibrated
  /// value when SetComputeCalibration ran, GpuSpec::kernel_overhead_sec
  /// otherwise. The chunked cost model uses it to price the extra (K - 1)
  /// launches per leg that pipelining at depth K costs (DESIGN.md §12).
  double kernel_overhead_sec() const { return compute_overhead_sec_; }

  // --- Calibration hooks (used by collective::Profiler) -----------------

  /// Overrides the compute model with a fitted linear cost per token.
  void SetComputeCalibration(double overhead_sec, double sec_per_flop);

  /// Scales analytic link bandwidth for one link class (e.g. 0.92 if the
  /// engine delivers 92% of nominal due to contention).
  void SetLinkEfficiency(LinkClass link, double efficiency);

  /// Installs a fitted AllReduce cost for one group signature.
  void SetAllReduceCalibration(const GroupSignature& sig, LinearCost cost);

  /// Returns the calibrated entry if present.
  const LinearCost* FindAllReduceCalibration(const GroupSignature& sig) const;

  GroupSignature SignatureOf(const std::vector<GpuId>& group) const;

 private:
  /// A GPU on `node` whose link to `dst` represents the node's tier
  /// (never dst itself, which would read the loopback class).
  GpuId NodeRepresentative(NodeId node, GpuId dst) const;

  double RingAllReduceSeconds(double bytes,
                              const std::vector<GpuId>& group) const;

  /// Rebuilds the flat pairwise caches from the topology and the current
  /// link efficiencies (called at construction and by SetLinkEfficiency).
  void RebuildLinkCaches();

  const Topology* topo_;
  GpuSpec spec_;
  bool hierarchical_a2a_ = false;
  double sec_per_flop_;
  double compute_overhead_sec_;
  std::map<LinkClass, double> link_efficiency_;
  std::map<GroupSignature, LinearCost> allreduce_calibration_;
  /// Flat G x G caches of effective bandwidth and latency per pair.
  Matrix<double> bandwidth_cache_;
  Matrix<double> latency_cache_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_TOPOLOGY_PROFILE_H_
