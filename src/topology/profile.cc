#include "topology/profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace flexmoe {

Status GpuSpec::Validate() const {
  if (peak_flops <= 0) return Status::InvalidArgument("peak_flops <= 0");
  if (efficiency <= 0 || efficiency > 1.0) {
    return Status::InvalidArgument("efficiency must be in (0, 1]");
  }
  if (kernel_overhead_sec < 0) {
    return Status::InvalidArgument("kernel_overhead_sec < 0");
  }
  if (memory_bytes <= 0) return Status::InvalidArgument("memory_bytes <= 0");
  return Status::OK();
}

HardwareProfile::HardwareProfile(const Topology* topo, const GpuSpec& spec)
    : topo_(topo), spec_(spec) {
  FLEXMOE_CHECK(topo != nullptr);
  FLEXMOE_CHECK_OK(spec.Validate());
  sec_per_flop_ = 1.0 / (spec.peak_flops * spec.efficiency);
  compute_overhead_sec_ = spec.kernel_overhead_sec;
  link_efficiency_[LinkClass::kLoopback] = 1.0;
  link_efficiency_[LinkClass::kIntraNode] = 1.0;
  link_efficiency_[LinkClass::kInterNode] = 1.0;
  RebuildLinkCaches();
}

void HardwareProfile::RebuildLinkCaches() {
  const int n = topo_->num_gpus();
  bandwidth_cache_.assign(n, n, 0.0);
  latency_cache_.assign(n, n, 0.0);
  for (GpuId src = 0; src < n; ++src) {
    for (GpuId dst = 0; dst < n; ++dst) {
      const LinkClass link = topo_->LinkBetween(src, dst);
      bandwidth_cache_(src, dst) =
          topo_->BandwidthBytesPerSec(src, dst) * link_efficiency_.at(link);
      latency_cache_(src, dst) = topo_->LatencySeconds(src, dst);
    }
  }
}

double HardwareProfile::ComputeSeconds(double tokens,
                                       double flops_per_token) const {
  if (tokens <= 0) return 0.0;
  return compute_overhead_sec_ + tokens * flops_per_token * sec_per_flop_;
}

double HardwareProfile::TokensPerSecond(double flops_per_token) const {
  return 1.0 / (flops_per_token * sec_per_flop_);
}

double HardwareProfile::P2pSeconds(double bytes, GpuId src, GpuId dst) const {
  if (bytes <= 0) return 0.0;
  return LatencySeconds(src, dst) + bytes / BandwidthBytesPerSec(src, dst);
}

GroupSignature HardwareProfile::SignatureOf(
    const std::vector<GpuId>& group) const {
  return GroupSignature{static_cast<int>(group.size()),
                        topo_->NodesSpanned(group)};
}

double HardwareProfile::RingAllReduceSeconds(
    double bytes, const std::vector<GpuId>& group) const {
  const size_t k = group.size();
  if (k < 2 || bytes <= 0) return 0.0;
  // Ring all-reduce: 2(k-1) phases, each moving bytes/k over the
  // bottleneck link; latency paid once per phase.
  const bool spans_nodes = topo_->NodesSpanned(group) > 1;
  const LinkClass link =
      spans_nodes ? LinkClass::kInterNode : LinkClass::kIntraNode;
  const double bw = topo_->MinGroupBandwidth(group) * link_efficiency_.at(link);
  const double lat = spans_nodes ? topo_->options().inter_node_latency_sec
                                 : topo_->options().intra_node_latency_sec;
  const double phases = 2.0 * static_cast<double>(k - 1);
  return phases * (bytes / static_cast<double>(k) / bw + lat);
}

double HardwareProfile::AllReduceSeconds(
    double bytes, const std::vector<GpuId>& group) const {
  if (group.size() < 2 || bytes <= 0) return 0.0;
  const auto* fitted = FindAllReduceCalibration(SignatureOf(group));
  if (fitted != nullptr) return fitted->Seconds(bytes);
  return RingAllReduceSeconds(bytes, group);
}

double HardwareProfile::AllReduceBps(double bytes,
                                     const std::vector<GpuId>& group) const {
  const double sec = AllReduceSeconds(bytes, group);
  if (sec <= 0.0) return std::numeric_limits<double>::infinity();
  return bytes / sec;
}

void HardwareProfile::SetComputeCalibration(double overhead_sec,
                                            double sec_per_flop) {
  FLEXMOE_CHECK(overhead_sec >= 0 && sec_per_flop > 0);
  compute_overhead_sec_ = overhead_sec;
  sec_per_flop_ = sec_per_flop;
}

void HardwareProfile::SetLinkEfficiency(LinkClass link, double efficiency) {
  FLEXMOE_CHECK(efficiency > 0 && efficiency <= 1.5);
  link_efficiency_[link] = efficiency;
  RebuildLinkCaches();
}

void HardwareProfile::SetAllReduceCalibration(const GroupSignature& sig,
                                              LinearCost cost) {
  allreduce_calibration_[sig] = cost;
}

const LinearCost* HardwareProfile::FindAllReduceCalibration(
    const GroupSignature& sig) const {
  const auto it = allreduce_calibration_.find(sig);
  return it == allreduce_calibration_.end() ? nullptr : &it->second;
}

GpuId HardwareProfile::NodeRepresentative(NodeId node, GpuId dst) const {
  GpuId rep = node * topo_->gpus_per_node();
  // When dst sits first on its own node, the next member represents the
  // intra-node tier. (A 1-GPU node never carries intra-node traffic, so
  // this branch is only ever read when a distinct member exists.)
  if (rep == dst) ++rep;
  return rep;
}

double HardwareProfile::NodeBandwidthBytesPerSec(NodeId src_node,
                                                 GpuId dst) const {
  return bandwidth_cache_(NodeRepresentative(src_node, dst), dst);
}

double HardwareProfile::NodeLatencySeconds(NodeId src_node, GpuId dst) const {
  return latency_cache_(NodeRepresentative(src_node, dst), dst);
}

}  // namespace flexmoe
