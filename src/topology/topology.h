// Cluster topology model: nodes of GPUs connected by NVLink intra-node and
// InfiniBand inter-node, mirroring the paper's testbed (8xA100 Azure VMs,
// NVLink 3.0 within a node, 8x200 Gbps IB across nodes).
//
// All scheduling logic consumes only the quantities exposed here (bandwidth,
// latency, node membership), which is exactly the information the paper's
// system obtains by profiling its physical cluster.

#ifndef FLEXMOE_TOPOLOGY_TOPOLOGY_H_
#define FLEXMOE_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace flexmoe {

/// GPU index within the cluster, in [0, num_gpus).
using GpuId = int;
/// Node (server) index within the cluster.
using NodeId = int;

/// Classes of links between a pair of GPUs.
enum class LinkClass {
  kLoopback,   ///< same GPU (device-local copy)
  kIntraNode,  ///< NVLink / NVSwitch within one server
  kInterNode,  ///< InfiniBand / NIC across servers
};

const char* LinkClassName(LinkClass c);

/// \brief Parameters describing a homogeneous GPU cluster.
struct TopologyOptions {
  int num_nodes = 8;
  int gpus_per_node = 8;

  /// NVLink 3.0-class effective per-GPU bandwidth (bytes/s).
  double intra_node_bytes_per_sec = 300e9;
  /// 200 Gbps InfiniBand per GPU (the paper: 8 NICs x 200 Gbps per node).
  double inter_node_bytes_per_sec = 25e9;
  /// Device-local copies (shared-memory parameter sharing) are effectively
  /// free relative to network transfers but still finite.
  double loopback_bytes_per_sec = 1.3e12;

  double intra_node_latency_sec = 3e-6;
  double inter_node_latency_sec = 10e-6;
  double loopback_latency_sec = 1e-6;

  /// Returns OK iff all fields are consistent (positive sizes/bandwidths).
  Status Validate() const;
};

/// \brief An immutable cluster description with bandwidth/latency queries.
class Topology {
 public:
  /// Builds a topology after validating `options`.
  static Result<Topology> Create(const TopologyOptions& options);

  int num_gpus() const { return options_.num_nodes * options_.gpus_per_node; }
  int num_nodes() const { return options_.num_nodes; }
  int gpus_per_node() const { return options_.gpus_per_node; }
  const TopologyOptions& options() const { return options_; }

  NodeId NodeOf(GpuId g) const;
  bool SameNode(GpuId a, GpuId b) const;
  LinkClass LinkBetween(GpuId a, GpuId b) const;

  /// Effective bandwidth of the (a, b) path in bytes/s.
  double BandwidthBytesPerSec(GpuId a, GpuId b) const;

  /// One-way message latency of the (a, b) path in seconds.
  double LatencySeconds(GpuId a, GpuId b) const;

  /// All GPUs residing on `node`.
  std::vector<GpuId> GpusOnNode(NodeId node) const;

  /// Number of distinct nodes spanned by `gpus`.
  int NodesSpanned(const std::vector<GpuId>& gpus) const;

  /// Minimum pairwise bandwidth within a group (the ring bottleneck).
  double MinGroupBandwidth(const std::vector<GpuId>& gpus) const;

  std::string ToString() const;

 private:
  explicit Topology(TopologyOptions options) : options_(options) {}

  TopologyOptions options_;
};

/// \brief Preset mirroring the paper's evaluation cluster scaled to
/// `num_gpus` (must be a multiple of 8; 8 GPUs per node).
TopologyOptions AzureA100Options(int num_gpus);

}  // namespace flexmoe

#endif  // FLEXMOE_TOPOLOGY_TOPOLOGY_H_
