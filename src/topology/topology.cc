#include "topology/topology.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace flexmoe {

const char* LinkClassName(LinkClass c) {
  switch (c) {
    case LinkClass::kLoopback:
      return "loopback";
    case LinkClass::kIntraNode:
      return "intra-node";
    case LinkClass::kInterNode:
      return "inter-node";
  }
  return "?";
}

Status TopologyOptions::Validate() const {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  if (gpus_per_node <= 0) {
    return Status::InvalidArgument("gpus_per_node must be positive");
  }
  if (intra_node_bytes_per_sec <= 0 || inter_node_bytes_per_sec <= 0 ||
      loopback_bytes_per_sec <= 0) {
    return Status::InvalidArgument("bandwidths must be positive");
  }
  if (intra_node_latency_sec < 0 || inter_node_latency_sec < 0 ||
      loopback_latency_sec < 0) {
    return Status::InvalidArgument("latencies must be non-negative");
  }
  return Status::OK();
}

Result<Topology> Topology::Create(const TopologyOptions& options) {
  FLEXMOE_RETURN_IF_ERROR(options.Validate());
  return Topology(options);
}

NodeId Topology::NodeOf(GpuId g) const {
  FLEXMOE_CHECK(g >= 0 && g < num_gpus());
  return g / options_.gpus_per_node;
}

bool Topology::SameNode(GpuId a, GpuId b) const {
  return NodeOf(a) == NodeOf(b);
}

LinkClass Topology::LinkBetween(GpuId a, GpuId b) const {
  if (a == b) return LinkClass::kLoopback;
  return SameNode(a, b) ? LinkClass::kIntraNode : LinkClass::kInterNode;
}

double Topology::BandwidthBytesPerSec(GpuId a, GpuId b) const {
  switch (LinkBetween(a, b)) {
    case LinkClass::kLoopback:
      return options_.loopback_bytes_per_sec;
    case LinkClass::kIntraNode:
      return options_.intra_node_bytes_per_sec;
    case LinkClass::kInterNode:
      return options_.inter_node_bytes_per_sec;
  }
  return 0.0;
}

double Topology::LatencySeconds(GpuId a, GpuId b) const {
  switch (LinkBetween(a, b)) {
    case LinkClass::kLoopback:
      return options_.loopback_latency_sec;
    case LinkClass::kIntraNode:
      return options_.intra_node_latency_sec;
    case LinkClass::kInterNode:
      return options_.inter_node_latency_sec;
  }
  return 0.0;
}

std::vector<GpuId> Topology::GpusOnNode(NodeId node) const {
  FLEXMOE_CHECK(node >= 0 && node < num_nodes());
  std::vector<GpuId> out;
  out.reserve(options_.gpus_per_node);
  for (int i = 0; i < options_.gpus_per_node; ++i) {
    out.push_back(node * options_.gpus_per_node + i);
  }
  return out;
}

int Topology::NodesSpanned(const std::vector<GpuId>& gpus) const {
  std::set<NodeId> nodes;
  for (GpuId g : gpus) nodes.insert(NodeOf(g));
  return static_cast<int>(nodes.size());
}

double Topology::MinGroupBandwidth(const std::vector<GpuId>& gpus) const {
  if (gpus.size() < 2) return options_.loopback_bytes_per_sec;
  // The bottleneck link of any ring over the group: inter-node if the group
  // spans several nodes, otherwise intra-node.
  return NodesSpanned(gpus) > 1 ? options_.inter_node_bytes_per_sec
                                : options_.intra_node_bytes_per_sec;
}

std::string Topology::ToString() const {
  std::ostringstream os;
  os << num_nodes() << " nodes x " << gpus_per_node() << " GPUs"
     << " | intra " << HumanBytes(options_.intra_node_bytes_per_sec) << "/s"
     << " | inter " << HumanBytes(options_.inter_node_bytes_per_sec) << "/s";
  return os.str();
}

TopologyOptions AzureA100Options(int num_gpus) {
  FLEXMOE_CHECK_MSG(num_gpus > 0 && num_gpus % 8 == 0,
                    "Azure preset requires a multiple of 8 GPUs");
  TopologyOptions opts;
  opts.num_nodes = num_gpus / 8;
  opts.gpus_per_node = 8;
  return opts;
}

}  // namespace flexmoe
