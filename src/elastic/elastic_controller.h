// ElasticController: the per-system fault-handling authority. It owns the
// ClusterHealth view and the FaultScheduler, fires due events at each step
// boundary, invalidates NCCL groups that include departed devices, repairs
// the system's placements (elastic drain for FlexMoE, static failover for
// the baselines), and prices the recovery work the system must block on.
//
// Two recovery disciplines, matching what the systems can actually do:
//
//  * elastic (FlexMoE): dead devices are drained — replicated experts lose
//    one replica for free, sole-replica experts are re-read from the
//    checkpoint store. No restart: the dynamic placement machinery then
//    rebalances the survivors in the background.
//  * static (DeepSpeed-EP / FasterMoE / SWIPE): a fail-stop forces a full
//    checkpoint restart; the dead device's experts pile onto one failover
//    peer, where they stay (a fixed layout cannot rebalance) until a
//    replacement device joins and the original layout is restored.

#ifndef FLEXMOE_ELASTIC_ELASTIC_CONTROLLER_H_
#define FLEXMOE_ELASTIC_ELASTIC_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "collective/nccl_group.h"
#include "elastic/cluster_health.h"
#include "elastic/fault_plan.h"
#include "elastic/fault_scheduler.h"
#include "elastic/recovery.h"
#include "obs/observability.h"
#include "topology/profile.h"

namespace flexmoe {

/// \brief Controller configuration.
struct ElasticControllerOptions {
  /// Elastic repair (drain + continue) vs. static repair (restart +
  /// failover).
  bool elastic = true;
  /// Restart penalty a static system pays per membership change (checkpoint
  /// load, process re-spawn, communicator re-bootstrap).
  double restart_seconds = 30.0;
  /// Checkpoint-store read bandwidth for re-materializing lost expert
  /// states.
  double checkpoint_bytes_per_sec = 2e9;

  Status Validate() const;
};

/// \brief Drives fault handling for one training system.
class ElasticController {
 public:
  ElasticController(int num_gpus, const Topology* topo,
                    const ElasticControllerOptions& options);

  /// Arms the controller with a plan; resets health to all-healthy and
  /// forgets any previously captured placement baseline.
  Status InstallPlan(const FaultPlan& plan);

  /// True once a plan is installed (even after its events are exhausted —
  /// the cluster may be permanently degraded).
  bool active() const { return scheduler_ != nullptr; }

  const ClusterHealth& health() const { return health_; }

  /// True when gate assignments must be re-sharded before routing — i.e.
  /// some device is dead. Stragglers keep their shard; only departed
  /// devices' tokens move.
  bool NeedsAssignmentAdjustment() const {
    return active() && health_.AnyDead();
  }

  struct StepReport {
    std::vector<FaultEvent> events;   ///< applied this boundary
    bool membership_changed = false;
    bool perf_changed = false;        ///< slowdown/recover applied
    /// Blocking fault-handling time charged to this step (restart penalty,
    /// checkpoint reads).
    double recovery_seconds = 0.0;
    int experts_restored = 0;
    /// Experts left without a live replica (repair impossible): the system
    /// must report the step as degraded.
    int orphaned_experts = 0;
  };

  /// Fires events due at `step` and repairs `placements` in place. On the
  /// first call the pre-fault placements are captured as the restore
  /// baseline for static systems. `group_cache` (nullable) loses every
  /// group containing a departed device. Placements passed here must keep
  /// the same shape across calls.
  StepReport OnStepBoundary(int64_t step,
                            const std::vector<Placement*>& placements,
                            NcclGroupCache* group_cache,
                            double expert_state_bytes);

  /// Prepares one layer's gate assignment for the current membership:
  /// tokens sourced on devices that *fail-stopped at this boundary* are
  /// lost (added to `*tokens_dropped`); tokens sourced on previously
  /// departed devices were re-sharded onto survivors and are redistributed.
  Assignment AdjustAssignment(const Assignment& assignment,
                              int64_t* tokens_dropped) const;

  int64_t skipped_events() const {
    return scheduler_ == nullptr ? 0 : scheduler_->skipped_events();
  }

  /// Installs the per-run observability handle (nullable): fault events,
  /// membership changes, restored/orphaned experts, and recovery time go
  /// into the metrics registry. The controller has no sim clock, so the
  /// owning system emits the recovery trace spans.
  void SetObservability(obs::Observability* obs) { obs_ = obs; }

 private:
  /// Counts `report` in the metrics registry (no-op without a handle).
  void RecordReport(const StepReport& report);

  int num_gpus_;
  const Topology* topo_;
  ElasticControllerOptions options_;
  ClusterHealth health_;
  std::unique_ptr<FaultScheduler> scheduler_;
  std::vector<Placement> baseline_;  ///< pre-fault layouts (static repair)
  bool baseline_captured_ = false;
  std::vector<GpuId> newly_failed_;  ///< fail-stops at the current boundary
  obs::Observability* obs_ = nullptr;
};

}  // namespace flexmoe

#endif  // FLEXMOE_ELASTIC_ELASTIC_CONTROLLER_H_
