#include "elastic/fault_scheduler.h"

namespace flexmoe {

FaultScheduler::FaultScheduler(FaultPlan plan) : plan_(std::move(plan)) {}

std::vector<FaultEvent> FaultScheduler::AdvanceTo(int64_t step,
                                                  ClusterHealth* health) {
  FLEXMOE_CHECK(health != nullptr);
  std::vector<FaultEvent> applied;
  const std::vector<FaultEvent>& events = plan_.events();
  while (next_ < events.size() && events[next_].step <= step) {
    const FaultEvent& e = events[next_];
    ++next_;
    if (health->Apply(e).ok()) {
      applied.push_back(e);
    } else {
      ++skipped_;
    }
  }
  return applied;
}

void FaultScheduler::InstallOn(SimEngine* engine, double seconds_per_step,
                               ClusterHealth* health) {
  FLEXMOE_CHECK(engine != nullptr && health != nullptr);
  FLEXMOE_CHECK(seconds_per_step > 0.0);
  const std::vector<FaultEvent>& events = plan_.events();
  for (; next_ < events.size(); ++next_) {
    const FaultEvent e = events[next_];
    const double at = static_cast<double>(e.step) * seconds_per_step;
    engine->ScheduleAt(std::max(at, engine->now()), [this, e, health]() {
      if (!health->Apply(e).ok()) ++skipped_;
    });
  }
}

}  // namespace flexmoe
