#include "elastic/cluster_health.h"

#include "util/string_util.h"

namespace flexmoe {

const char* DeviceStateName(DeviceState s) {
  switch (s) {
    case DeviceState::kHealthy:
      return "Healthy";
    case DeviceState::kDegraded:
      return "Degraded";
    case DeviceState::kFailed:
      return "Failed";
    case DeviceState::kLeft:
      return "Left";
  }
  return "?";
}

ClusterHealth::ClusterHealth(int num_gpus)
    : states_(static_cast<size_t>(num_gpus), DeviceState::kHealthy),
      compute_mult_(static_cast<size_t>(num_gpus), 1.0),
      bandwidth_mult_(static_cast<size_t>(num_gpus), 1.0) {
  FLEXMOE_CHECK(num_gpus > 0);
}

DeviceState ClusterHealth::state(GpuId g) const {
  FLEXMOE_CHECK(g >= 0 && g < num_gpus());
  return states_[static_cast<size_t>(g)];
}

bool ClusterHealth::alive(GpuId g) const {
  const DeviceState s = state(g);
  return s == DeviceState::kHealthy || s == DeviceState::kDegraded;
}

int ClusterHealth::num_alive() const {
  int n = 0;
  for (int g = 0; g < num_gpus(); ++g) {
    if (alive(g)) ++n;
  }
  return n;
}

std::vector<GpuId> ClusterHealth::AliveGpus() const {
  std::vector<GpuId> out;
  out.reserve(states_.size());
  for (int g = 0; g < num_gpus(); ++g) {
    if (alive(g)) out.push_back(g);
  }
  return out;
}

bool ClusterHealth::AllHealthy() const {
  for (const DeviceState s : states_) {
    if (s != DeviceState::kHealthy) return false;
  }
  return true;
}

bool ClusterHealth::AnyDegraded() const {
  for (const DeviceState s : states_) {
    if (s == DeviceState::kDegraded) return true;
  }
  return false;
}

double ClusterHealth::compute_multiplier(GpuId g) const {
  FLEXMOE_CHECK(g >= 0 && g < num_gpus());
  return compute_mult_[static_cast<size_t>(g)];
}

double ClusterHealth::bandwidth_multiplier(GpuId g) const {
  FLEXMOE_CHECK(g >= 0 && g < num_gpus());
  return bandwidth_mult_[static_cast<size_t>(g)];
}

Status ClusterHealth::Apply(const FaultEvent& event) {
  if (event.gpu < 0 || event.gpu >= num_gpus()) {
    return Status::InvalidArgument(
        StrFormat("event gpu %d out of range", event.gpu));
  }
  const size_t gi = static_cast<size_t>(event.gpu);
  const DeviceState s = states_[gi];
  switch (event.type) {
    case FaultType::kFailStop:
      if (!alive(event.gpu)) {
        return Status::FailedPrecondition("fail-stop on a dead device");
      }
      states_[gi] = DeviceState::kFailed;
      compute_mult_[gi] = 1.0;
      bandwidth_mult_[gi] = 1.0;
      ++membership_version_;
      break;
    case FaultType::kLeave:
      if (!alive(event.gpu)) {
        return Status::FailedPrecondition("leave on a dead device");
      }
      states_[gi] = DeviceState::kLeft;
      compute_mult_[gi] = 1.0;
      bandwidth_mult_[gi] = 1.0;
      ++membership_version_;
      break;
    case FaultType::kJoin:
      if (alive(event.gpu)) {
        return Status::FailedPrecondition("join on a live device");
      }
      states_[gi] = DeviceState::kHealthy;
      compute_mult_[gi] = 1.0;
      bandwidth_mult_[gi] = 1.0;
      ++membership_version_;
      break;
    case FaultType::kSlowdown:
      if (!alive(event.gpu)) {
        return Status::FailedPrecondition("slowdown on a dead device");
      }
      if (event.compute_multiplier < 1.0 || event.bandwidth_multiplier < 1.0) {
        return Status::InvalidArgument("slowdown multipliers must be >= 1");
      }
      states_[gi] = DeviceState::kDegraded;
      compute_mult_[gi] = event.compute_multiplier;
      bandwidth_mult_[gi] = event.bandwidth_multiplier;
      break;
    case FaultType::kRecover:
      if (s != DeviceState::kDegraded) {
        return Status::FailedPrecondition("recover on a non-degraded device");
      }
      states_[gi] = DeviceState::kHealthy;
      compute_mult_[gi] = 1.0;
      bandwidth_mult_[gi] = 1.0;
      break;
  }
  ++version_;
  return Status::OK();
}

std::string ClusterHealth::ToString() const {
  std::string out = StrFormat("ClusterHealth(%d/%d alive", num_alive(),
                              num_gpus());
  for (int g = 0; g < num_gpus(); ++g) {
    const DeviceState s = states_[static_cast<size_t>(g)];
    if (s == DeviceState::kHealthy) continue;
    out += StrFormat("; gpu%d=%s", g, DeviceStateName(s));
    if (s == DeviceState::kDegraded) {
      out += StrFormat(" x%.2f/x%.2f", compute_multiplier(g),
                       bandwidth_multiplier(g));
    }
  }
  out += ")";
  return out;
}

}  // namespace flexmoe
