// ClusterHealth: the dynamic-membership view layered over the static
// Topology/ClusterState. The topology enumerates every device slot the
// cluster could have; ClusterHealth tracks which of them are currently
// alive, which are degraded (stragglers), and which are gone — and versions
// those facts so schedulers and controllers can react to capacity changes
// without polling every device each step.

#ifndef FLEXMOE_ELASTIC_CLUSTER_HEALTH_H_
#define FLEXMOE_ELASTIC_CLUSTER_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "elastic/fault_plan.h"
#include "topology/topology.h"
#include "util/status.h"

namespace flexmoe {

/// \brief Health state of one device.
enum class DeviceState {
  kHealthy,
  kDegraded,  ///< alive but slowed (straggler)
  kFailed,    ///< fail-stopped; resident state lost
  kLeft,      ///< departed gracefully (drained first)
};

const char* DeviceStateName(DeviceState s);

/// \brief Mutable per-device health registry.
class ClusterHealth {
 public:
  explicit ClusterHealth(int num_gpus);

  int num_gpus() const { return static_cast<int>(states_.size()); }
  DeviceState state(GpuId g) const;

  /// Healthy or degraded — the device participates in training.
  bool alive(GpuId g) const;
  int num_alive() const;
  std::vector<GpuId> AliveGpus() const;
  bool AllHealthy() const;
  bool AnyDead() const { return num_alive() < num_gpus(); }
  bool AnyDegraded() const;

  /// Execution-time multipliers (1.0 for healthy devices, >= 1 otherwise).
  double compute_multiplier(GpuId g) const;
  double bandwidth_multiplier(GpuId g) const;

  /// Bumped on every state change (including slowdown/recover).
  int64_t version() const { return version_; }
  /// Bumped only on alive <-> dead edges (fail-stop, leave, join).
  int64_t membership_version() const { return membership_version_; }

  /// Applies one event. Impossible transitions (failing a dead GPU,
  /// recovering a healthy one) return FailedPrecondition and change
  /// nothing.
  Status Apply(const FaultEvent& event);

  std::string ToString() const;

 private:
  std::vector<DeviceState> states_;
  std::vector<double> compute_mult_;
  std::vector<double> bandwidth_mult_;
  int64_t version_ = 0;
  int64_t membership_version_ = 0;
};

}  // namespace flexmoe

#endif  // FLEXMOE_ELASTIC_CLUSTER_HEALTH_H_
