#include "elastic/elastic_controller.h"

#include <algorithm>

namespace flexmoe {

Status ElasticControllerOptions::Validate() const {
  if (restart_seconds < 0.0) {
    return Status::InvalidArgument("restart_seconds < 0");
  }
  if (checkpoint_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("checkpoint_bytes_per_sec <= 0");
  }
  return Status::OK();
}

ElasticController::ElasticController(int num_gpus, const Topology* topo,
                                     const ElasticControllerOptions& options)
    : num_gpus_(num_gpus),
      topo_(topo),
      options_(options),
      health_(num_gpus) {
  FLEXMOE_CHECK(topo != nullptr);
  FLEXMOE_CHECK(topo->num_gpus() == num_gpus);
  FLEXMOE_CHECK_OK(options.Validate());
}

Status ElasticController::InstallPlan(const FaultPlan& plan) {
  for (const FaultEvent& e : plan.events()) {
    if (e.gpu < 0 || e.gpu >= num_gpus_) {
      return Status::InvalidArgument("fault plan targets out-of-range GPU");
    }
  }
  health_ = ClusterHealth(num_gpus_);
  scheduler_ = std::make_unique<FaultScheduler>(plan);
  baseline_.clear();
  baseline_captured_ = false;
  newly_failed_.clear();
  return Status::OK();
}

void ElasticController::RecordReport(const StepReport& report) {
  obs::MetricsRegistry* m = obs::MetricsOf(obs_);
  if (m == nullptr || report.events.empty()) return;
  m->Add("elastic.fault_events", static_cast<int64_t>(report.events.size()));
  if (report.membership_changed) m->Add("elastic.membership_changes");
  if (report.perf_changed) m->Add("elastic.perf_changes");
  if (report.experts_restored > 0) {
    m->Add("elastic.experts_restored", report.experts_restored);
  }
  if (report.orphaned_experts > 0) {
    m->Add("elastic.orphaned_experts", report.orphaned_experts);
  }
  if (report.recovery_seconds > 0.0) {
    m->Observe("elastic.recovery_seconds", report.recovery_seconds);
  }
}

ElasticController::StepReport ElasticController::OnStepBoundary(
    int64_t step, const std::vector<Placement*>& placements,
    NcclGroupCache* group_cache, double expert_state_bytes) {
  StepReport report;
  if (scheduler_ == nullptr) return report;

  if (!baseline_captured_) {
    baseline_.reserve(placements.size());
    for (const Placement* p : placements) {
      FLEXMOE_CHECK(p != nullptr);
      baseline_.push_back(*p);
    }
    baseline_captured_ = true;
  }
  FLEXMOE_CHECK(placements.size() == baseline_.size());

  newly_failed_.clear();
  report.events = scheduler_->AdvanceTo(step, &health_);
  if (report.events.empty()) return report;

  for (const FaultEvent& e : report.events) {
    switch (e.type) {
      case FaultType::kFailStop:
        newly_failed_.push_back(e.gpu);
        report.membership_changed = true;
        break;
      case FaultType::kLeave:
      case FaultType::kJoin:
        report.membership_changed = true;
        break;
      case FaultType::kSlowdown:
      case FaultType::kRecover:
        report.perf_changed = true;
        break;
    }
    if (group_cache != nullptr &&
        (e.type == FaultType::kFailStop || e.type == FaultType::kLeave)) {
      // Communicators that include a departed rank are dead; evict them so
      // the next Acquire pays the re-bootstrap cost.
      group_cache->EvictGroupsContaining(e.gpu);
    }
  }
  if (!report.membership_changed) {
    RecordReport(report);
    return report;
  }

  if (options_.elastic) {
    // A join brings empty slots, not state: any tombstone replica parked
    // on the rejoining device (an orphan that could not be restored
    // elsewhere) must be re-read from the checkpoint store now.
    for (const FaultEvent& e : report.events) {
      if (e.type != FaultType::kJoin) continue;
      for (Placement* p : placements) {
        const int tombstones =
            static_cast<int>(p->ExpertsOn(e.gpu).size());
        report.experts_restored += tombstones;
        report.recovery_seconds += tombstones * expert_state_bytes /
                                   options_.checkpoint_bytes_per_sec;
      }
    }
    // Elastic drain (best effort): replicas cover most losses; only
    // sole-replica experts cost a checkpoint read; experts the survivors
    // cannot host run orphaned. Training continues without a restart.
    for (Placement* p : placements) {
      const Result<DrainReport> drained =
          DrainPlacement(health_, expert_state_bytes, p);
      FLEXMOE_CHECK_OK(drained);
      report.experts_restored += drained->experts_restored;
      report.orphaned_experts += drained->orphaned_experts;
      report.recovery_seconds +=
          drained->restore_bytes / options_.checkpoint_bytes_per_sec;
    }
  } else {
    // Static failover: the whole job restarts from the checkpoint; each
    // dead device's experts reload onto its failover peer (or back onto
    // their home device once it rejoins).
    report.recovery_seconds += options_.restart_seconds;
    for (size_t i = 0; i < placements.size(); ++i) {
      const Result<Placement> repaired =
          FailoverPlacement(baseline_[i], health_, *topo_);
      if (!repaired.ok()) {
        report.orphaned_experts +=
            ExpertsWithoutLiveReplica(*placements[i], health_);
        continue;
      }
      // Reload every expert that is not where the current placement has it.
      double moved_bytes = 0.0;
      for (int e = 0; e < repaired->num_experts(); ++e) {
        if (!(repaired->Replicas(e) == placements[i]->Replicas(e))) {
          moved_bytes += expert_state_bytes;
        }
      }
      report.recovery_seconds +=
          moved_bytes / options_.checkpoint_bytes_per_sec;
      *placements[i] = *repaired;
    }
  }
  RecordReport(report);
  return report;
}

Assignment ElasticController::AdjustAssignment(const Assignment& assignment,
                                               int64_t* tokens_dropped) const {
  if (scheduler_ == nullptr) return assignment;
  Assignment adjusted = assignment;
  if (!newly_failed_.empty()) {
    // Tokens resident on a device that just fail-stopped are gone; their
    // loss is the irreducible cost of an abrupt failure.
    int64_t lost = 0;
    Assignment pruned(assignment.num_experts(), assignment.num_gpus());
    for (int e = 0; e < assignment.num_experts(); ++e) {
      for (int g = 0; g < assignment.num_gpus(); ++g) {
        const int64_t tokens = assignment.at(e, g);
        if (tokens <= 0) continue;
        const bool just_failed =
            std::find(newly_failed_.begin(), newly_failed_.end(), g) !=
            newly_failed_.end();
        if (just_failed) {
          lost += tokens;
        } else {
          pruned.add(e, g, tokens);
        }
      }
    }
    if (tokens_dropped != nullptr) *tokens_dropped += lost;
    adjusted = std::move(pruned);
  }
  if (health_.num_alive() < num_gpus_) {
    adjusted = RedistributeSources(adjusted, health_);
  }
  return adjusted;
}

}  // namespace flexmoe
