// Placement- and workload-repair primitives used after membership changes.
//
//  * RedistributeSources — the surviving data-parallel ranks absorb the
//    batch shard of departed devices, so the global token stream continues
//    uninterrupted.
//  * DrainPlacement — elastic repair (FlexMoE): vExperts on dead devices
//    are released; experts whose replicas were all lost are re-materialized
//    from the checkpoint store onto the emptiest survivors. Cheap when the
//    placement already replicates hot experts — the FlexMoE advantage.
//  * FailoverPlacement — static repair (baselines): each dead device's
//    experts move wholesale to a same-node failover peer, concentrating its
//    entire load there. No rebalancing — exactly what a fixed expert-
//    parallel layout restarted from a checkpoint does.
//  * ExpertsWithoutLiveReplica — the degraded-mode invariant probe: a step
//    that runs while some expert has no replica on a live device must be
//    reported as degraded.

#ifndef FLEXMOE_ELASTIC_RECOVERY_H_
#define FLEXMOE_ELASTIC_RECOVERY_H_

#include <cstdint>

#include "elastic/cluster_health.h"
#include "moe/moe_layer.h"
#include "placement/placement.h"

namespace flexmoe {

/// \brief Moves token sources on non-alive GPUs onto alive GPUs
/// (round-robin per expert, deterministic). Token counts are conserved.
Assignment RedistributeSources(const Assignment& assignment,
                               const ClusterHealth& health);

/// \brief Number of experts with zero vExperts on live devices.
int ExpertsWithoutLiveReplica(const Placement& placement,
                              const ClusterHealth& health);

/// \brief Outcome of an elastic drain.
struct DrainReport {
  int vexperts_released = 0;   ///< replicas dropped from dead devices
  int experts_restored = 0;    ///< sole-replica experts re-materialized
  double restore_bytes = 0.0;  ///< bytes read back from the checkpoint store
  /// Experts the survivors could not host: they keep one tombstone replica
  /// on a dead device and their tokens are skipped — degraded mode.
  int orphaned_experts = 0;
};

/// \brief Removes every vExpert on non-alive devices from `placement`;
/// experts that lose all replicas are restored onto the alive GPUs with the
/// most free slots (checkpoint read of `expert_state_bytes` each). Best
/// effort: experts the surviving slots cannot host are reported in
/// `orphaned_experts` (each keeps one tombstone replica on a dead device)
/// while everything else is still drained — the caller must run in
/// degraded mode until capacity returns.
Result<DrainReport> DrainPlacement(const ClusterHealth& health,
                                   double expert_state_bytes,
                                   Placement* placement);

/// \brief The deterministic failover peer of `gpu`: the next alive GPU on
/// the same node (cyclic scan), else the next alive GPU by id. Requires at
/// least one alive GPU.
GpuId FailoverTarget(GpuId gpu, const ClusterHealth& health,
                     const Topology& topo);

/// \brief Rebuilds `placement` with every dead device's vExperts reassigned
/// wholesale to its FailoverTarget. Slot capacity grows as needed (the
/// failover peer now hosts two devices' worth of experts). With every
/// device alive this returns a copy of `placement` — which is how a static
/// system recovers once a replacement joins.
Result<Placement> FailoverPlacement(const Placement& placement,
                                    const ClusterHealth& health,
                                    const Topology& topo);

}  // namespace flexmoe

#endif  // FLEXMOE_ELASTIC_RECOVERY_H_
