#include "elastic/fault_plan.h"

#include <algorithm>

#include "util/rng.h"
#include "util/string_util.h"

namespace flexmoe {

const char* FaultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kFailStop:
      return "FailStop";
    case FaultType::kSlowdown:
      return "Slowdown";
    case FaultType::kRecover:
      return "Recover";
    case FaultType::kLeave:
      return "Leave";
    case FaultType::kJoin:
      return "Join";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  if (type == FaultType::kSlowdown) {
    return StrFormat("step %lld: %s gpu %d (compute x%.3f, bw x%.3f)",
                     static_cast<long long>(step), FaultTypeName(type), gpu,
                     compute_multiplier, bandwidth_multiplier);
  }
  return StrFormat("step %lld: %s gpu %d", static_cast<long long>(step),
                   FaultTypeName(type), gpu);
}

bool FaultEvent::operator==(const FaultEvent& o) const {
  return step == o.step && type == o.type && gpu == o.gpu &&
         compute_multiplier == o.compute_multiplier &&
         bandwidth_multiplier == o.bandwidth_multiplier;
}

Status FaultPlanOptions::Validate() const {
  if (scenario != "none" && scenario != "failstop" && scenario != "straggler" &&
      scenario != "churn" && scenario != "random") {
    return Status::InvalidArgument(
        StrFormat("unknown fault scenario '%s'", scenario.c_str()));
  }
  if (num_gpus <= 0) return Status::InvalidArgument("num_gpus <= 0");
  if (scenario != "none") {
    if (fault_step < 0) return Status::InvalidArgument("fault_step < 0");
    if (gpu >= num_gpus) return Status::InvalidArgument("gpu out of range");
    if (compute_multiplier < 1.0 || bandwidth_multiplier < 1.0) {
      return Status::InvalidArgument("slowdown multipliers must be >= 1");
    }
  }
  if (scenario == "random") {
    if (horizon_steps <= 0) return Status::InvalidArgument("horizon_steps <= 0");
    if (fail_rate_per_step < 0.0 || straggle_rate_per_step < 0.0) {
      return Status::InvalidArgument("event rates must be >= 0");
    }
    if (mean_outage_steps <= 0 || mean_straggle_steps <= 0) {
      return Status::InvalidArgument("mean event durations must be > 0");
    }
  }
  return Status::OK();
}

FaultPlan FaultPlan::FromEvents(std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.step < b.step;
                   });
  return FaultPlan(std::move(events));
}

namespace {

/// Random scenario generation walks a shadow health state so it never emits
/// impossible transitions (failing an already-failed GPU, recovering a
/// healthy one).
std::vector<FaultEvent> GenerateRandom(const FaultPlanOptions& o) {
  Rng rng(o.seed);
  enum class S { kUp, kDown, kSlow };
  std::vector<S> state(static_cast<size_t>(o.num_gpus), S::kUp);
  // Scheduled end events, keyed by step; generated inline so the stream of
  // Rng draws (and thus the plan) is a pure function of the seed.
  std::vector<FaultEvent> events;
  std::vector<int64_t> until(static_cast<size_t>(o.num_gpus), -1);

  for (int64_t step = 1; step <= o.horizon_steps; ++step) {
    // Scheduled recoveries fire first.
    for (int g = 0; g < o.num_gpus; ++g) {
      const size_t gi = static_cast<size_t>(g);
      if (until[gi] == step) {
        FaultEvent e;
        e.step = step;
        e.gpu = g;
        e.type = state[gi] == S::kDown ? FaultType::kJoin : FaultType::kRecover;
        events.push_back(e);
        state[gi] = S::kUp;
        until[gi] = -1;
      }
    }
    // New faults: at most one per step keeps scenarios interpretable.
    const double draw = rng.Uniform();
    FaultType type;
    if (draw < o.fail_rate_per_step) {
      type = FaultType::kFailStop;
    } else if (draw < o.fail_rate_per_step + o.straggle_rate_per_step) {
      type = FaultType::kSlowdown;
    } else {
      continue;
    }
    std::vector<GpuId> up;
    for (int g = 0; g < o.num_gpus; ++g) {
      if (state[static_cast<size_t>(g)] == S::kUp) up.push_back(g);
    }
    // Keep a quorum: never take out the last half of the cluster.
    if (static_cast<int>(up.size()) <= (o.num_gpus + 1) / 2) continue;
    const GpuId g = up[rng.UniformInt(up.size())];
    const size_t gi = static_cast<size_t>(g);
    FaultEvent e;
    e.step = step;
    e.gpu = g;
    e.type = type;
    if (type == FaultType::kSlowdown) {
      e.compute_multiplier = o.compute_multiplier;
      e.bandwidth_multiplier = o.bandwidth_multiplier;
      state[gi] = S::kSlow;
      until[gi] = step + 1 +
                  static_cast<int64_t>(rng.UniformInt(
                      static_cast<uint64_t>(2 * o.mean_straggle_steps - 1)));
    } else {
      state[gi] = S::kDown;
      until[gi] = step + 1 +
                  static_cast<int64_t>(rng.UniformInt(
                      static_cast<uint64_t>(2 * o.mean_outage_steps - 1)));
    }
    events.push_back(e);
  }
  return events;
}

}  // namespace

Result<FaultPlan> FaultPlan::Generate(const FaultPlanOptions& options) {
  FLEXMOE_RETURN_IF_ERROR(options.Validate());
  if (options.scenario == "none") return FaultPlan();

  const GpuId target =
      options.gpu >= 0
          ? options.gpu
          : static_cast<GpuId>(Rng(options.seed).UniformInt(
                static_cast<uint64_t>(options.num_gpus)));

  std::vector<FaultEvent> events;
  if (options.scenario == "failstop") {
    FaultEvent fail;
    fail.step = options.fault_step;
    fail.type = FaultType::kFailStop;
    fail.gpu = target;
    events.push_back(fail);
    if (options.recover_step > options.fault_step) {
      FaultEvent join;
      join.step = options.recover_step;
      join.type = FaultType::kJoin;
      join.gpu = target;
      events.push_back(join);
    }
  } else if (options.scenario == "straggler") {
    FaultEvent slow;
    slow.step = options.fault_step;
    slow.type = FaultType::kSlowdown;
    slow.gpu = target;
    slow.compute_multiplier = options.compute_multiplier;
    slow.bandwidth_multiplier = options.bandwidth_multiplier;
    events.push_back(slow);
    if (options.recover_step > options.fault_step) {
      FaultEvent rec;
      rec.step = options.recover_step;
      rec.type = FaultType::kRecover;
      rec.gpu = target;
      events.push_back(rec);
    }
  } else if (options.scenario == "churn") {
    FaultEvent leave;
    leave.step = options.fault_step;
    leave.type = FaultType::kLeave;
    leave.gpu = target;
    events.push_back(leave);
    if (options.recover_step > options.fault_step) {
      FaultEvent join;
      join.step = options.recover_step;
      join.type = FaultType::kJoin;
      join.gpu = target;
      events.push_back(join);
    }
  } else {  // "random"
    events = GenerateRandom(options);
  }
  return FromEvents(std::move(events));
}

int64_t FaultPlan::horizon() const {
  return events_.empty() ? -1 : events_.back().step;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace flexmoe
