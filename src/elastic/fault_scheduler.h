// FaultScheduler: walks a FaultPlan during a run and applies due events to
// a ClusterHealth. Two delivery modes:
//
//  * step-driven — training systems call AdvanceTo(step) at each step
//    boundary (membership changes in real clusters surface between steps:
//    a NCCL error, a lost heartbeat, an elastic-agent rendezvous);
//  * time-driven — InstallOn schedules the remaining events as SimEngine
//    callbacks at step * seconds_per_step, for components that live on the
//    discrete-event clock rather than the step counter.
//
// Events whose precondition no longer holds (e.g. a random plan's Recover
// for a GPU that a later fail-stop took down) are skipped and counted, not
// fatal — mirroring real fault handlers, which must tolerate stale alerts.

#ifndef FLEXMOE_ELASTIC_FAULT_SCHEDULER_H_
#define FLEXMOE_ELASTIC_FAULT_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "elastic/cluster_health.h"
#include "elastic/fault_plan.h"
#include "sim/engine.h"

namespace flexmoe {

/// \brief Applies a FaultPlan's events as a run progresses.
class FaultScheduler {
 public:
  explicit FaultScheduler(FaultPlan plan);

  /// Applies every not-yet-fired event with event.step <= step to `health`
  /// (in plan order) and returns the successfully applied ones. Skipped
  /// (stale) events are dropped and counted in skipped_events().
  std::vector<FaultEvent> AdvanceTo(int64_t step, ClusterHealth* health);

  /// Schedules every remaining event on `engine` at time
  /// event.step * seconds_per_step. `health` must outlive the engine run.
  /// Consumes the events: subsequent AdvanceTo calls see none left.
  void InstallOn(SimEngine* engine, double seconds_per_step,
                 ClusterHealth* health);

  bool done() const { return next_ >= plan_.events().size(); }
  size_t remaining() const { return plan_.events().size() - next_; }
  int64_t skipped_events() const { return skipped_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  size_t next_ = 0;
  int64_t skipped_ = 0;
};

}  // namespace flexmoe

#endif  // FLEXMOE_ELASTIC_FAULT_SCHEDULER_H_
