// Fault plans: deterministic schedules of cluster-membership and
// performance events (GPU fail-stop, transient slowdown, recovery, node
// join/leave) injected into a training run. A plan is either authored
// explicitly, derived from a named scenario, or generated pseudo-randomly
// from a seed via util/rng — in every case the resulting event sequence is
// a pure function of its inputs, so runs replay bit-for-bit.

#ifndef FLEXMOE_ELASTIC_FAULT_PLAN_H_
#define FLEXMOE_ELASTIC_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.h"
#include "util/status.h"

namespace flexmoe {

/// \brief Kinds of injected cluster events.
enum class FaultType {
  kFailStop,  ///< GPU dies abruptly; resident tokens and states are lost
  kSlowdown,  ///< GPU becomes a straggler (compute/bandwidth multipliers)
  kRecover,   ///< straggler returns to full speed
  kLeave,     ///< GPU leaves gracefully (drained, nothing lost)
  kJoin,      ///< a failed/left GPU rejoins with empty memory
};

const char* FaultTypeName(FaultType t);

/// \brief One timed cluster event. Events fire at the boundary *before*
/// the step they are stamped with executes.
struct FaultEvent {
  int64_t step = 0;
  FaultType type = FaultType::kFailStop;
  GpuId gpu = -1;

  /// kSlowdown only: execution-time multipliers (>= 1; 2.0 = half speed).
  double compute_multiplier = 1.0;
  double bandwidth_multiplier = 1.0;

  std::string ToString() const;
  bool operator==(const FaultEvent& o) const;
};

/// \brief Parameters for scenario-based / random plan generation.
struct FaultPlanOptions {
  /// "none" | "failstop" | "straggler" | "churn" | "random".
  std::string scenario = "none";
  /// Must be set before Generate; 0 means "inherit" for harness callers
  /// (ResolveFaultOptions fills it from the experiment — same for seed).
  int num_gpus = 0;
  uint64_t seed = 0;

  /// Scenario event timing. `fault_step` is when the primary event fires;
  /// `recover_step` (straggler recovery / churn rejoin) < 0 means never.
  int64_t fault_step = 30;
  int64_t recover_step = -1;
  /// Target GPU; < 0 picks one deterministically from the seed.
  GpuId gpu = -1;

  /// Straggler severity.
  double compute_multiplier = 2.5;
  double bandwidth_multiplier = 2.0;

  /// "random" scenario: Bernoulli event draws per step over the horizon.
  int64_t horizon_steps = 200;
  double fail_rate_per_step = 0.002;
  double straggle_rate_per_step = 0.004;
  int64_t mean_outage_steps = 40;
  int64_t mean_straggle_steps = 25;

  Status Validate() const;
};

/// \brief An immutable, step-ordered schedule of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Stable-sorts `events` by step (relative order within a step is kept).
  static FaultPlan FromEvents(std::vector<FaultEvent> events);

  /// Builds the plan for a named scenario; "none" yields an empty plan.
  /// "random" draws events with the options' rates from an Rng stream
  /// seeded by `options.seed` (deterministic).
  static Result<FaultPlan> Generate(const FaultPlanOptions& options);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// Last event step (-1 for an empty plan).
  int64_t horizon() const;

  /// Canonical rendering, one event per line — the replay-determinism
  /// fixture compares these byte-for-byte.
  std::string ToString() const;

 private:
  explicit FaultPlan(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  std::vector<FaultEvent> events_;
};

}  // namespace flexmoe

#endif  // FLEXMOE_ELASTIC_FAULT_PLAN_H_
