#include "elastic/recovery.h"

#include <algorithm>

namespace flexmoe {

Assignment RedistributeSources(const Assignment& assignment,
                               const ClusterHealth& health) {
  FLEXMOE_CHECK(assignment.num_gpus() == health.num_gpus());
  const std::vector<GpuId> alive = health.AliveGpus();
  FLEXMOE_CHECK(!alive.empty());
  if (static_cast<int>(alive.size()) == health.num_gpus()) return assignment;

  Assignment out(assignment.num_experts(), assignment.num_gpus());
  size_t cursor = 0;  // rotates over alive GPUs for an even spread
  for (int e = 0; e < assignment.num_experts(); ++e) {
    for (int g = 0; g < assignment.num_gpus(); ++g) {
      const int64_t tokens = assignment.at(e, g);
      if (tokens <= 0) continue;
      if (health.alive(g)) {
        out.add(e, g, tokens);
      } else {
        out.add(e, alive[cursor % alive.size()], tokens);
        ++cursor;
      }
    }
  }
  return out;
}

int ExpertsWithoutLiveReplica(const Placement& placement,
                              const ClusterHealth& health) {
  FLEXMOE_CHECK(placement.num_gpus() == health.num_gpus());
  int orphaned = 0;
  for (int e = 0; e < placement.num_experts(); ++e) {
    bool live = false;
    for (const auto& [gpu, count] : placement.Replicas(e)) {
      (void)count;
      if (health.alive(gpu)) {
        live = true;
        break;
      }
    }
    if (!live) ++orphaned;
  }
  return orphaned;
}

Result<DrainReport> DrainPlacement(const ClusterHealth& health,
                                   double expert_state_bytes,
                                   Placement* placement) {
  FLEXMOE_CHECK(placement != nullptr);
  FLEXMOE_CHECK(placement->num_gpus() == health.num_gpus());
  DrainReport report;

  // Pass 1: restore experts whose every replica sits on a dead device —
  // they must land somewhere alive before the dead replicas are released
  // (RemoveVExpert refuses to zero out an expert).
  for (int e = 0; e < placement->num_experts(); ++e) {
    bool live = false;
    for (const auto& [gpu, count] : placement->Replicas(e)) {
      (void)count;
      if (health.alive(gpu)) {
        live = true;
        break;
      }
    }
    if (live) continue;
    GpuId best = -1;
    int best_free = 0;
    for (const GpuId g : health.AliveGpus()) {
      if (placement->FreeSlots(g) > best_free) {
        best = g;
        best_free = placement->FreeSlots(g);
      }
    }
    if (best < 0) {
      // Survivors are fully packed (the canonical initial placement binds
      // every slot): cannibalize one replica of the most-replicated expert
      // that keeps >= 2 live replicas. Losing one replica of a replicated
      // expert is strictly better than losing an expert.
      GpuId victim_gpu = -1;
      int victim_expert = -1, victim_live = 0;
      for (const GpuId g : health.AliveGpus()) {
        for (const int x : placement->ExpertsOn(g)) {
          int live_replicas = 0;
          for (const auto& [host, count] : placement->Replicas(x)) {
            if (health.alive(host)) live_replicas += count;
          }
          if (live_replicas >= 2 && live_replicas > victim_live) {
            victim_live = live_replicas;
            victim_expert = x;
            victim_gpu = g;
          }
        }
      }
      if (victim_expert < 0) {
        // Truly no room: the expert keeps a tombstone replica on the dead
        // device and runs orphaned until capacity returns. Keep draining
        // everything else.
        ++report.orphaned_experts;
        continue;
      }
      FLEXMOE_RETURN_IF_ERROR(
          placement->RemoveVExpert(victim_expert, victim_gpu));
      ++report.vexperts_released;
      best = victim_gpu;
    }
    FLEXMOE_RETURN_IF_ERROR(placement->AddVExpert(e, best));
    ++report.experts_restored;
    report.restore_bytes += expert_state_bytes;
  }

  // Pass 2: release every vExpert on a dead device — except an orphan's
  // tombstone (RemoveVExpert refuses to zero an expert out, and the
  // tombstone marks the states to restore when capacity returns).
  for (int g = 0; g < placement->num_gpus(); ++g) {
    if (health.alive(g)) continue;
    for (const int e : placement->ExpertsOn(g)) {
      while (placement->VExpertsOn(e, g) > 0 && placement->VExperts(e) > 1) {
        FLEXMOE_RETURN_IF_ERROR(placement->RemoveVExpert(e, g));
        ++report.vexperts_released;
      }
    }
  }
  FLEXMOE_RETURN_IF_ERROR(placement->Validate());
  return report;
}

GpuId FailoverTarget(GpuId gpu, const ClusterHealth& health,
                     const Topology& topo) {
  FLEXMOE_CHECK(gpu >= 0 && gpu < health.num_gpus());
  const std::vector<GpuId> peers = topo.GpusOnNode(topo.NodeOf(gpu));
  const auto self = std::find(peers.begin(), peers.end(), gpu);
  FLEXMOE_CHECK(self != peers.end());
  const size_t start = static_cast<size_t>(self - peers.begin());
  for (size_t i = 1; i <= peers.size(); ++i) {
    const GpuId candidate = peers[(start + i) % peers.size()];
    if (health.alive(candidate)) return candidate;
  }
  for (int i = 1; i <= health.num_gpus(); ++i) {
    const GpuId candidate = (gpu + i) % health.num_gpus();
    if (health.alive(candidate)) return candidate;
  }
  FLEXMOE_CHECK_MSG(false, "no alive GPU for failover");
  return -1;
}

Result<Placement> FailoverPlacement(const Placement& placement,
                                    const ClusterHealth& health,
                                    const Topology& topo) {
  FLEXMOE_CHECK(placement.num_gpus() == health.num_gpus());
  std::vector<std::map<GpuId, int>> replicas(
      static_cast<size_t>(placement.num_experts()));
  std::vector<int> needed(static_cast<size_t>(placement.num_gpus()), 0);
  for (int e = 0; e < placement.num_experts(); ++e) {
    for (const auto& [gpu, count] : placement.Replicas(e)) {
      const GpuId host =
          health.alive(gpu) ? gpu : FailoverTarget(gpu, health, topo);
      replicas[static_cast<size_t>(e)][host] += count;
      needed[static_cast<size_t>(host)] += count;
    }
  }
  PlacementOptions popt;
  popt.num_experts = placement.num_experts();
  popt.num_gpus = placement.num_gpus();
  popt.slots_per_gpu = std::max(placement.slots_per_gpu(),
                                *std::max_element(needed.begin(), needed.end()));
  return Placement::FromReplicaMap(popt, replicas);
}

}  // namespace flexmoe
